"""The vehicle process: job service, Phase I/II, heartbeats.

One :class:`VehicleProcess` lives at every vertex of every cube that can
receive jobs.  The process implements, faithfully to Algorithm 2:

* **Job service.**  The active vehicle of a pair serves every job arriving
  at either vertex of its pair, walking at most distance one and spending
  walk-plus-service energy.  When its remaining energy drops below the
  ``done_threshold`` it declares itself done.
* **Phase I.**  A done vehicle initiates a Dijkstra--Scholten diffusing
  computation over the cube's communication graph to locate an idle
  vehicle; intermediate vehicles flood queries, aggregate replies with
  deficit counters and remember the first positive responder as their
  ``child``.
* **Phase II.**  The initiator relays a move order along the child path;
  the located idle vehicle walks to the done vehicle's position, becomes
  active for the pair, and broadcasts an activation notice.
* **Monitoring (Section 3.2.5).**  Active vehicles heartbeat every round;
  the watcher of a silent pair starts a replacement computation on its
  behalf.  This covers scenario 2 (initiation failure) and scenario 3
  (dead vehicles).
* **Cross-cube escalation (extension).**  The thesis keeps every search
  inside one cube, which leaves ``omega_c < 1`` workloads -- singleton
  cubes with no idle vehicles at all -- without any replacement path.
  When the fleet runs with ``FleetConfig.escalation`` enabled, an
  initiator whose intra-cube flood terminates empty widens the diffusing
  computation through the dyadic cube hierarchy
  (:class:`~repro.grid.cubes.CubeHierarchy`): level by level it sends
  ``EscalateQuery`` boundary messages to every vehicle of the newly
  covered base cubes and aggregates ``EscalateReply`` answers with a
  deficit counter at the initiator, so the termination-detection tree of
  the escalated round is a star rooted where Phase I's tree was rooted.
  An *idle* responder migrates exactly as in Phase II; an *active*
  responder with surplus battery may instead **adopt** the far pair in
  addition to its own -- the move that makes all-active fleets
  recoverable.  Escalation adds two arrows' worth of behavior but no new
  states: initiating, relaying and taking over all reuse the Figure 3.1
  state machine unchanged.

Energy accounting is the whole point of the thesis, so it is explicit:
travel and service energies are tracked separately, a finite capacity is
enforced (a vehicle physically cannot overspend), and the fleet aggregates
the per-vehicle maxima the experiments report.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.distsim.process import Process
from repro.grid.coloring import Coloring
from repro.grid.lattice import Point, manhattan
from repro.vehicles.gossip import freshest_entries, select_peers
from repro.vehicles.messages import (
    ActivationNotice,
    AttestMessage,
    ComputationTag,
    EscalateQuery,
    EscalateReply,
    ExistingMessage,
    GossipDigest,
    MoveMessage,
    QueryMessage,
    ReplyMessage,
    SuspectMessage,
)
from repro.vehicles.monitoring import watched_pair_key
from repro.vehicles.registry import WATCH_NEVER, WATCH_NONE
from repro.vehicles.state import TransferState, VehicleStatus, WorkingState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vehicles.fleet import Fleet

__all__ = ["VehicleProcess"]

ENERGY_EPS = 1e-9

#: Sentinel distinguishing "not passed" from an explicit ``None`` for the
#: template-precomputed constructor arguments.
_UNSET = object()


class VehicleProcess(Process):
    """A single vehicle of the online protocol.

    Parameters
    ----------
    home:
        The vehicle's home vertex; doubles as its identity.
    cube_index:
        Multi-index of the cube the vehicle belongs to.
    coloring:
        The cube's black/white pairing (shared by all vehicles of the cube).
    initially_active:
        Whether the vehicle starts active (black vertex of its pair).
    capacity:
        Battery capacity ``W``; ``None`` means unbounded (measurement mode).
    neighbors:
        Identities of the vehicles it can message directly (same cube,
        within the constant communication radius).
    fleet:
        Back-reference used for registry callbacks and statistics.
    done_threshold:
        Remaining energy below which an active vehicle declares itself done.
    """

    def __init__(
        self,
        home: Point,
        *,
        cube_index: tuple,
        coloring: Coloring,
        initially_active: bool,
        capacity: Optional[float],
        neighbors: List[Point],
        fleet: "Fleet",
        done_threshold: float = 2.0,
        cube_peers: Optional[List[Point]] = None,
        index: Optional[int] = None,
        pair_key: Optional[Point] = _UNSET,
        monitored_pair: Optional[Point] = _UNSET,
    ) -> None:
        super().__init__(home)
        if type(home) is tuple and all(type(c) is int for c in home):
            self.home: Point = home
        else:
            self.home = tuple(int(c) for c in home)
        #: Dense index into the fleet's flat state arrays (see
        #: :class:`~repro.vehicles.registry.FleetRegistry`).  The batch
        #: constructor supplies it with the slot pre-filled
        #: (``add_cube``); stand-alone construction allocates one here.
        #: Current position starts at the home slot either way.
        registry = fleet.flat
        if index is None:
            index = registry.allocate_live_state(self.home, initially_active)
        self._index = index
        self._registry = registry

        self.cube_index = cube_index
        self.coloring = coloring
        self.capacity = capacity
        #: The constructor takes ownership of ``neighbors``/``cube_peers``
        #: (the batch constructor builds a fresh list per vehicle; copying
        #: them again was pure overhead at 10^4-vehicle scale).
        self.neighbors = neighbors if type(neighbors) is list else list(neighbors)
        #: All other vehicles of the same cube.  Heartbeats and activation
        #: notices are broadcast cube-wide (communication is free in the
        #: thesis's model and a cube has constant diameter in omega), while
        #: the Phase I diffusing computation only uses the constant-radius
        #: ``neighbors`` graph, as in Algorithm 2.
        if cube_peers is None:
            cube_peers = list(self.neighbors)
        self.cube_peers = cube_peers if type(cube_peers) is list else list(cube_peers)
        # (The assignment above runs the ``cube_peers`` property setter,
        # which mirrors the has-peers flag into the registry.)
        self.fleet = fleet
        self.done_threshold = done_threshold
        #: Scenario 3: a broken ("dead") vehicle can no longer move, serve or
        #: heartbeat, but its radio still works (it answers queries), so the
        #: diffusing computations of its neighbors still terminate.
        self.broken = False

        self.status = VehicleStatus(
            working=WorkingState.ACTIVE if initially_active else WorkingState.IDLE,
            transfer=TransferState.WAITING,
            observer=self._on_working_change,
        )
        #: The black vertex of the pair this vehicle is responsible for
        #: (``None`` while idle).  The batch constructor passes the
        #: template-computed values; the fallback derives them from the
        #: coloring exactly as the loop constructor always did.
        if pair_key is _UNSET:
            pair = coloring.pair_of(self.home)
            pair_key = pair.black if initially_active else None
        self.pair_key = pair_key
        # Monitoring bookkeeping: last heartbeat round heard per pair.
        # (Created before the watch target below -- the ``monitored_pair``
        # setter mirrors its entry into the registry's watch-heard array.)
        self.last_heard: Dict[Point, int] = {}
        #: The pair this vehicle watches for heartbeats (monitoring scheme).
        if monitored_pair is _UNSET:
            self.monitored_pair = (
                watched_pair_key(coloring, coloring.pair_of(self.home).black)
                if initially_active
                else None
            )
        else:
            # Batch path: the watch slot is pre-initialized to -1, so only
            # a real target needs the registry write (skips the property
            # setter's dict lookup for the idle majority).
            self._monitored_pair = monitored_pair
            if monitored_pair is not None:
                registry.watch[index] = registry.pair_id_of[monitored_pair]
                registry.watch_heard[index] = WATCH_NEVER

        # Energy ledger (lives in the registry's contiguous arrays; the
        # attribute API below is a view).
        self.jobs_served = 0

        # Phase I bookkeeping (Algorithm 2 local data: num / par / child / init).
        # (Assigned directly: the ``engaged_tag`` setter consults clock and
        # escalation attributes that do not exist yet.)
        self._engaged_tag: Optional[ComputationTag] = None
        self.last_tag: Optional[ComputationTag] = None
        self.parent: Optional[Hashable] = None
        self.child: Optional[Hashable] = None
        self.deficit = 0
        #: Computations this vehicle initiated, keyed by tag; values carry the
        #: destination and pair being replaced.
        self.initiated: Dict[ComputationTag, Dict[str, Point]] = {}

        # Search-starvation clock: how many consecutive heartbeat rounds the
        # vehicle has been engaged in the same diffusing computation.
        self._engaged_tag_seen: Optional[ComputationTag] = None
        self._engaged_rounds = 0

        # Cross-cube escalation bookkeeping (escalation mode only).
        #: Pairs this vehicle *adopted* on top of its own (spare-battery
        #: volunteering across cube boundaries); it serves and heartbeats
        #: for them without giving up its own pair.
        self.adopted_pairs: List[Point] = []
        #: Escalated searches this vehicle is aggregating, keyed by tag:
        #: ``{"level", "pending", "candidates", "rounds"}`` -- the deficit
        #: counter and volunteer list of the star-shaped escalated round.
        self.escalations: Dict[ComputationTag, Dict[str, Any]] = {}

        # Gossip failure detection (``monitoring == "gossip"`` only; see
        # :mod:`repro.vehicles.gossip`).
        #: Per-vehicle draw counter keying deterministic peer selection.
        self._gossip_counter = 0
        #: Silence reports by pair: ``{pair_key: {reporter: report_round}}``.
        #: Deduplicated by reporter identity, so a report replicating
        #: through many digests still counts once toward suspicion.
        self.gossip_reports: Dict[Point, Dict[Point, int]] = {}
        #: Open quorum collections by suspected pair:
        #: ``{pair_key: {"granted": set of co-signers, "round": last
        #: SuspectMessage round}}``.
        self.pending_suspicions: Dict[Point, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # flat-array state (the object API is a view over the registry)
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> int:
        """Dense index into the fleet's flat state arrays."""
        return self._index

    @property
    def travel_energy(self) -> float:
        """Travel energy spent so far (registry-backed)."""
        return self._registry.travel[self._index]

    @travel_energy.setter
    def travel_energy(self, value: float) -> None:
        self._registry.travel[self._index] = value

    @property
    def service_energy(self) -> float:
        """Service energy spent so far (registry-backed)."""
        return self._registry.service[self._index]

    @service_energy.setter
    def service_energy(self, value: float) -> None:
        self._registry.service[self._index] = value

    @property
    def position(self) -> Point:
        """Current lattice position (registry-backed)."""
        return self._registry.positions[self._index]

    @position.setter
    def position(self, value: Point) -> None:
        self._registry.positions[self._index] = value

    @property
    def monitored_pair(self) -> Optional[Point]:
        """The pair this vehicle watches for heartbeats (registry-backed)."""
        return self._monitored_pair

    @monitored_pair.setter
    def monitored_pair(self, value: Optional[Point]) -> None:
        self._monitored_pair = value
        registry = self._registry
        registry.watch[self._index] = (
            -1 if value is None else registry.pair_id_of.get(value, -1)
        )
        registry.watch_heard[self._index] = (
            WATCH_NONE if value is None else self.last_heard.get(value, WATCH_NEVER)
        )

    @property
    def cube_peers(self) -> List[Point]:
        """All other vehicles of the same cube (broadcast audience).

        The setter mirrors a has-peers flag into the registry so the plain
        heartbeat round can drop peerless senders without touching the
        object.  Reassignment-only contract: every residency change
        (construction, rehoming, checkpoint restore) *replaces* the list;
        nothing mutates it in place.
        """
        return self._cube_peers

    @cube_peers.setter
    def cube_peers(self, value: List[Point]) -> None:
        self._cube_peers = value
        self._registry.peers[self._index] = 1 if value else 0

    @property
    def engaged_tag(self) -> Optional[ComputationTag]:
        """Tag of the diffusing computation this vehicle is engaged in.

        The setter mirrors engagement into the registry's engaged set so
        the per-round protocol sweep touches only vehicles with non-trivial
        search state (see :meth:`~repro.vehicles.fleet.Fleet.run_heartbeat_round`).
        """
        return self._engaged_tag

    @engaged_tag.setter
    def engaged_tag(self, value: Optional[ComputationTag]) -> None:
        self._engaged_tag = value
        if value is not None:
            self._registry.engaged.add(self._index)
        else:
            self._release_engaged_bit()

    def _release_engaged_bit(self) -> None:
        """Drop out of the registry's engaged set once *all* search state is
        trivial: no engagement, no live escalations, and a zeroed
        starvation clock.  A broken-but-engaged vehicle keeps its bit --
        its clock must resume ticking after repair."""
        if (
            self._engaged_tag is None
            and not self.escalations
            and not self._engaged_rounds
            and self._engaged_tag_seen is None
        ):
            self._registry.engaged.discard(self._index)

    def _on_working_change(self, working: WorkingState) -> None:
        """Observer installed on :class:`VehicleStatus`: mirrors the working
        state into the registry's contiguous state array."""
        self._registry.state[self._index] = self._registry.state_code(working)

    # ------------------------------------------------------------------ #
    # energy accounting
    # ------------------------------------------------------------------ #

    @property
    def energy_used(self) -> float:
        """Total energy consumed so far (travel plus service)."""
        return self.travel_energy + self.service_energy

    @property
    def energy_remaining(self) -> float:
        """Remaining battery (infinite in measurement mode)."""
        if self.capacity is None:
            return math.inf
        return self.capacity - self.energy_used

    def _can_spend(self, amount: float) -> bool:
        return self.capacity is None or self.energy_used + amount <= self.capacity + ENERGY_EPS

    # ------------------------------------------------------------------ #
    # job service
    # ------------------------------------------------------------------ #

    def serve_job(self, position: Point, energy: float = 1.0) -> bool:
        """Serve a job at ``position``; returns ``False`` if it cannot.

        The fleet only routes a job here when this vehicle is the pair's
        registered active vehicle; the vehicle still re-checks its state and
        energy so that infeasibility (capacity too small) surfaces as an
        unserved job rather than a negative battery.
        """
        if self.broken or self.status.working != WorkingState.ACTIVE:
            return False
        position = tuple(int(c) for c in position)
        walk = manhattan(self.position, position)
        needed = walk + energy
        # Hot path: the energy ledger lives in the registry's flat arrays;
        # read/update it directly rather than through the per-field
        # properties.  Expression order matches ``_can_spend`` /
        # ``energy_remaining`` exactly: (travel + service) + needed and
        # capacity - (travel + service).
        registry = self._registry
        index = self._index
        capacity = self.capacity
        travel = registry.travel
        service = registry.service
        if capacity is not None and not (
            (travel[index] + service[index]) + needed <= capacity + ENERGY_EPS
        ):
            # Cannot serve: declare done immediately so a replacement comes.
            self._become_done()
            return False
        travel[index] += walk
        service[index] += energy
        self.position = position
        self.jobs_served += 1
        if capacity is not None and (
            capacity - (travel[index] + service[index]) < self.done_threshold
        ):
            self._become_done()
        return True

    def _become_done(self) -> None:
        if self.status.working != WorkingState.ACTIVE:
            return
        if self.status.transfer == TransferState.SEARCHING:
            # A relayed search the vehicle joined never terminated -- possible
            # only when failures (partitions, drops) ate its replies.  The
            # thesis assumes searches complete; under message loss the stale
            # engagement is abandoned through the legal Figure 3.1 arrow
            # (active, searching) -> (active, waiting) before going done, so
            # the state machine's invariant survives the adversary.
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
        pair_key = self.pair_key
        if self.fleet.failure_plan.is_initiation_suppressed(self.identity):
            # Scenario 2: the done vehicle silently fails to start Phase I;
            # the monitoring loop must recover.
            self.status.transition(WorkingState.DONE, TransferState.WAITING)
            self.fleet.record_suppressed_initiation(self.identity)
            return
        self.status.transition(WorkingState.DONE, TransferState.INITIATOR)
        self.fleet.record_done(self.identity)
        assert pair_key is not None
        self.start_replacement_search(destination=self.position, pair_key=pair_key)

    # ------------------------------------------------------------------ #
    # Phase I: initiating a diffusing computation
    # ------------------------------------------------------------------ #

    def start_replacement_search(self, *, destination: Point, pair_key: Point) -> None:
        """Initiate a diffusing computation to find an idle replacement.

        Called by a done vehicle for itself (Algorithm 2's first block) or
        by a watcher on behalf of a silent pair (Section 3.2.5).
        """
        tag: ComputationTag = (self.identity, self.fleet.next_computation_round())
        self.initiated[tag] = {"destination": destination, "pair_key": pair_key}
        self.engaged_tag = tag
        self.last_tag = tag
        self.parent = None
        self.child = None
        self.deficit = len(self.neighbors)
        self.fleet.record_search_started(tag)
        if self.deficit == 0:
            # No neighbors to flood (a singleton cube): the computation
            # terminates on the spot, so release the engagement before
            # finishing -- a lingering ``engaged_tag`` would make the
            # starvation clock re-enter ``_finish_own_computation`` later
            # (double-counting the failure, or restarting a whole
            # escalation ladder for an already-dispatched replacement) and
            # would suspend the initiator's watch duty for nothing.
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
            self._finish_own_computation(tag)
            return
        self.send_many(
            self.neighbors, QueryMessage(tag, self.identity, destination, pair_key)
        )

    # ------------------------------------------------------------------ #
    # message dispatch
    # ------------------------------------------------------------------ #

    def on_message(self, sender: Hashable, message: Any) -> None:
        if isinstance(message, QueryMessage):
            self._on_query(sender, message)
        elif isinstance(message, ReplyMessage):
            self._on_reply(sender, message)
        elif isinstance(message, MoveMessage):
            self._on_move(sender, message)
        elif isinstance(message, ExistingMessage):
            self._on_existing(message)
        elif isinstance(message, ActivationNotice):
            self._on_activation_notice(message)
        elif isinstance(message, EscalateQuery):
            self._on_escalate_query(sender, message)
        elif isinstance(message, EscalateReply):
            self._on_escalate_reply(sender, message)
        elif isinstance(message, GossipDigest):
            self._on_gossip_digest(message)
        elif isinstance(message, SuspectMessage):
            self._on_suspect(message)
        elif isinstance(message, AttestMessage):
            self._on_attest(message)
        else:
            raise TypeError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------ #
    # Phase I handlers (Algorithm 2)
    # ------------------------------------------------------------------ #

    def _on_query(self, sender: Hashable, message: QueryMessage) -> None:
        engaged_elsewhere = self.engaged_tag is not None
        already_seen = message.tag == self.last_tag
        if engaged_elsewhere or already_seen:
            self.send(sender, ReplyMessage(message.tag, self.identity, False))
            return
        # Join the computation.
        self.last_tag = message.tag
        self.parent = sender
        self.child = None
        if self.status.working == WorkingState.IDLE and not self.broken:
            # An idle vehicle answers positively and does not forward.
            self.send(sender, ReplyMessage(message.tag, self.identity, True))
            return
        self.engaged_tag = message.tag
        self.status.set_transfer(TransferState.SEARCHING)
        self.deficit = len(self.neighbors)
        if self.deficit == 0:
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
            self.send(sender, ReplyMessage(message.tag, self.identity, False))
            return
        self.send_many(
            self.neighbors,
            QueryMessage(message.tag, self.identity, message.destination, message.pair_key),
        )

    def _on_reply(self, sender: Hashable, message: ReplyMessage) -> None:
        if message.tag != self.engaged_tag:
            return  # stale reply from an earlier computation
        self.deficit -= 1
        if message.flag and self.child is None:
            self.child = message.sender
            if self.parent is not None:
                self.send(self.parent, ReplyMessage(message.tag, self.identity, True))
        if self.deficit == 0:
            tag = self.engaged_tag
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
            if self.parent is None:
                self._finish_own_computation(tag)
            elif self.child is None:
                self.send(self.parent, ReplyMessage(tag, self.identity, False))

    def _finish_own_computation(self, tag: ComputationTag) -> None:
        """Initiator termination: launch Phase II, escalate, or record failure."""
        info = self.initiated.get(tag)
        if info is None:
            return
        if self.child is None:
            if self.fleet.config.escalation and tag not in self.escalations:
                # The intra-cube flood came back empty: widen the diffusing
                # computation to the parent cube instead of giving up.
                self._begin_escalation(tag)
            else:
                self.fleet.record_failed_replacement(info["pair_key"])
            return
        self.send(
            self.child,
            MoveMessage(tag, self.identity, info["destination"], info["pair_key"]),
        )

    # ------------------------------------------------------------------ #
    # cross-cube escalation (escalation mode)
    # ------------------------------------------------------------------ #

    def _begin_escalation(self, tag: ComputationTag) -> None:
        """Start the ring-by-ring widening of an exhausted Phase I search.

        The ladder of rings is computed up front from static fleet
        structure, rooted at the cube of the pair being replaced (see
        :meth:`~repro.vehicles.fleet.Fleet.escalation_rings`); the
        initiator then walks it outward one deficit-counted round at a
        time.
        """
        info = self.initiated[tag]
        rings = self.fleet.escalation_rings(
            self.cube_index, info["pair_key"], exclude=self.identity
        )
        self.escalations[tag] = {
            "rings": rings,
            "level": 0,
            "pending": 0,
            "candidates": [],
            "rounds": 0,
        }
        self._registry.engaged.add(self._index)
        self.fleet.record_escalation_started(tag)
        self._escalate_next_level(tag)

    def _escalate_next_level(self, tag: ComputationTag) -> None:
        """Query the next escalation ring, or fail out past the last one."""
        esc = self.escalations[tag]
        info = self.initiated[tag]
        if esc["level"] >= len(esc["rings"]):
            del self.escalations[tag]
            self._release_engaged_bit()
            self.fleet.record_failed_replacement(info["pair_key"])
            return
        targets = esc["rings"][esc["level"]]
        esc["level"] += 1
        esc["pending"] = len(targets)
        esc["candidates"] = []
        esc["rounds"] = 0
        self.send_many(
            targets,
            EscalateQuery(
                tag, self.identity, info["destination"], info["pair_key"], esc["level"]
            ),
        )

    def _on_escalate_query(self, sender: Hashable, message: EscalateQuery) -> None:
        """Answer a boundary query: can this vehicle take the far pair over?

        Answering is stateless -- no engagement, no parent pointer -- so a
        boundary query can never entangle two diffusing computations; the
        deficit lives entirely at the escalating initiator.  A vehicle
        volunteers when it is healthy, unengaged, and either idle (the
        classical Phase II candidate) or active with battery to spare
        beyond ``FleetConfig.escalation_reserve`` after the walk (the
        adoption candidate that keeps all-active fleets serviceable).
        """
        flag = False
        spare = False
        if not self.broken and self.engaged_tag is None and not self.escalations:
            walk = manhattan(self.position, message.destination)
            if self.status.working == WorkingState.IDLE:
                flag = self._can_spend(walk)
            elif self.status.working == WorkingState.ACTIVE:
                reserve = self.fleet.config.escalation_reserve
                flag = (
                    self.capacity is None
                    or self.energy_remaining - walk > reserve
                )
                spare = flag
        self.send(
            message.sender,
            EscalateReply(
                message.tag, self.identity, flag, spare, message.level, self.position
            ),
        )

    def _on_escalate_reply(self, sender: Hashable, message: EscalateReply) -> None:
        esc = self.escalations.get(message.tag)
        if esc is None:
            return  # stale reply from an already-settled escalation
        if message.level != esc["level"]:
            # A reply from a ring the starvation clock already abandoned:
            # counting it against the *current* ring's deficit would settle
            # that ring before its own replies return and could cascade the
            # ladder to a premature failure.
            return
        esc["pending"] -= 1
        if message.flag:
            esc["candidates"].append((message.spare, message.sender, message.position))
        if esc["pending"] <= 0:
            self._conclude_escalation_level(message.tag)

    def _conclude_escalation_level(self, tag: ComputationTag) -> None:
        """All replies of the current ring are in: dispatch or widen further.

        The energy bill of a cross-cube replacement is the volunteer's
        walk *from where it currently stands* (reported in its reply --
        homes are immutable but positions drift with every served job), so
        candidates are ranked by that distance first (a ring can span many
        cubes; picking a far volunteer when a near one answered burns
        battery for nothing and can cascade into further replacements),
        then idle-before-spare, then identity.  The ranking is a pure
        function of the reply set, so the choice is independent of message
        delays and the run stays deterministic under any transport.
        """
        esc = self.escalations[tag]
        info = self.initiated[tag]
        if esc["candidates"]:
            destination = info["destination"]
            spare, chosen, _ = min(
                esc["candidates"],
                key=lambda item: (
                    manhattan(item[2] if item[2] else item[1], destination),
                    item[0],
                    item[1],
                ),
            )
            del self.escalations[tag]
            self._release_engaged_bit()
            self.send(
                chosen,
                MoveMessage(
                    tag, self.identity, info["destination"], info["pair_key"],
                    escalated=True,
                ),
            )
            return
        self._escalate_next_level(tag)

    # ------------------------------------------------------------------ #
    # Phase II handler
    # ------------------------------------------------------------------ #

    def _on_move(self, sender: Hashable, message: MoveMessage) -> None:
        if (
            not message.escalated
            and message.tag == self.last_tag
            and self.child is not None
        ):
            # Not the endpoint: copy the order to the next vehicle on the
            # path.  Escalated orders are addressed *directly* to the chosen
            # volunteer and never relayed -- a volunteer that once served as
            # a Phase I relay for the same tag (its forwarded True reply
            # lost in transit) would otherwise bounce the order down its
            # stale child chain, bypassing the initiator's candidate choice.
            self.send(self.child, MoveMessage(message.tag, self.identity, message.destination, message.pair_key))
            return
        # Endpoint: the candidate located in Phase I or by an escalated round.
        escalation = self.fleet.config.escalation
        if self.broken:
            self.fleet.record_failed_replacement(message.pair_key)
            return
        if message.escalated and self.status.working == WorkingState.ACTIVE:
            self._adopt_pair(message)
            return
        if self.status.working != WorkingState.IDLE:
            # Includes an active endpoint receiving a plain intra-cube order
            # (the located idle vehicle was activated in the meantime): the
            # historical legal refusal; the monitoring loop retries.
            self.fleet.record_failed_replacement(message.pair_key)
            return
        local = self._is_local_pair_key(message.pair_key)
        if not local and not (
            escalation and message.escalated and self.fleet.is_pair_key(message.pair_key)
        ):
            # A Byzantine transport may scramble the pair key into a vertex
            # that names no pair of this cube; taking such an order over
            # would corrupt the registry and the watch loop.  Refusing it is
            # the legal outcome (the search failed), not an error.  Only an
            # *escalated* order may name a real pair of another cube (a
            # legitimate cross-cube takeover) -- a plain intra-cube order
            # with a foreign key can only be corruption, escalation or not.
            self.fleet.record_failed_replacement(message.pair_key)
            return
        walk = manhattan(self.position, message.destination)
        if not self._can_spend(walk):
            self.fleet.record_failed_replacement(message.pair_key)
            return
        self.travel_energy += walk
        self.position = tuple(int(c) for c in message.destination)
        self.status.transition(WorkingState.ACTIVE, TransferState.WAITING)
        self.pair_key = message.pair_key
        if not local:
            # The vehicle physically relocated into another cube: it adopts
            # that cube's coloring, membership and (hence) watch duties.
            self.fleet.rehome_vehicle(self, message.pair_key)
        if escalation:
            self.monitored_pair = self.fleet.watched_pair(message.pair_key)
            self._grace_new_watch(self.monitored_pair)
        else:
            self.monitored_pair = watched_pair_key(self.coloring, message.pair_key)
        if message.escalated:
            # Counted here, on acceptance -- a dispatched order the endpoint
            # refuses must not inflate the escalation success counters.
            self.fleet.record_escalated_replacement(spare=False)
        self.fleet.on_activation(self.identity, message.pair_key)
        self.send_many(
            self._activation_audience(message.pair_key),
            ActivationNotice(self.identity, message.pair_key, self.position),
        )

    def _adopt_pair(self, message: MoveMessage) -> None:
        """Spare-battery adoption: an active vehicle takes a far pair *too*.

        The adopter keeps its own pair and working state (no Figure 3.1
        transition happens -- it stays ``(active, waiting)``); it walks to
        the far pair, registers as its responsible vehicle, and from now
        on serves and heartbeats for both.  This is the only replacement
        path in an all-active fleet (every ``omega_c < 1`` workload).
        """
        if not self.fleet.is_pair_key(message.pair_key):
            self.fleet.record_failed_replacement(message.pair_key)
            return
        if message.pair_key == self.pair_key or message.pair_key in self.adopted_pairs:
            if (
                self.fleet.config.hand_back
                and message.pair_key == self.pair_key
                and self.fleet.registered_vehicle(message.pair_key) != self.identity
            ):
                # Hand-back reclaim: the pair is this vehicle's *own* but
                # the registry points at an adopter -- the order is the
                # adopter offering it back after this vehicle's revival.
                # No walk and no state transition (the owner never left
                # active); re-register and announce, which releases the
                # adoption at the adopter (see ``_on_activation_notice``).
                self.fleet.on_hand_back(self.identity, message.pair_key)
                self.send_many(
                    self._activation_audience(message.pair_key),
                    ActivationNotice(self.identity, message.pair_key, self.position),
                )
                return
            return  # duplicate move order for a pair it already answers for
        walk = manhattan(self.position, message.destination)
        if (
            self.capacity is not None
            and self.energy_remaining - walk <= self.fleet.config.escalation_reserve
        ):
            # Re-check the volunteer invariant at acceptance time: jobs may
            # have drained the battery between the reply and the move order,
            # and adopting below the reserve would just mint the next done
            # vehicle.  Refusing is legal; the monitoring loop retries.
            self.fleet.record_failed_replacement(message.pair_key)
            return
        if not self._can_spend(walk):
            # Belt over braces: a zero/negative reserve configuration must
            # still never let the battery physically overspend.
            self.fleet.record_failed_replacement(message.pair_key)
            return
        self.travel_energy += walk
        self.position = tuple(int(c) for c in message.destination)
        self.adopted_pairs.append(message.pair_key)
        self._grace_new_watch(self.fleet.watched_pair(message.pair_key))
        if message.escalated:
            self.fleet.record_escalated_replacement(spare=True)
        self.fleet.on_adoption(self.identity, message.pair_key)
        self.fleet.on_activation(self.identity, message.pair_key)
        self.send_many(
            self._activation_audience(message.pair_key),
            ActivationNotice(self.identity, message.pair_key, self.position),
        )

    def _grace_new_watch(self, watched: Optional[Point]) -> None:
        """Reset the silence clock of a freshly acquired watch target.

        A replacement or adopter inherits the watch duty of its new pair,
        but it has never been in that target's heartbeat audience: without
        a grace period the stale (or absent) ``last_heard`` entry reads as
        ``miss_threshold`` rounds of silence and fires a *spurious*
        replacement for a perfectly healthy pair -- each adoption would
        spawn the next one, a fleet-wide replacement storm.  Treating the
        target as heard at the acquisition round gives its real heartbeats
        time to start arriving.
        """
        if watched is None:
            return
        current = self.fleet.heartbeat_round
        if self.last_heard.get(watched, -1) < current:
            self.last_heard[watched] = current
            if watched == self._monitored_pair:
                self._registry.watch_heard[self._index] = current

    def _activation_audience(self, pair_key: Point) -> List[Point]:
        """Who hears the activation notice for ``pair_key``.

        Intra-cube (the historical behavior): the vehicle's own cube peers.
        In escalation mode the notice goes to the members of the *pair's*
        cube -- the watchers whose timers it must reset may live there.
        """
        if not self.fleet.config.escalation:
            return self.cube_peers
        return self.fleet.activation_audience(pair_key, exclude=self.identity)

    def _is_local_pair_key(self, pair_key: Point) -> bool:
        """Whether ``pair_key`` is the black vertex of a pair of this cube."""
        try:
            pair = self.coloring.pair_of(pair_key)
        except ValueError:
            return False
        return pair.black == tuple(int(c) for c in pair_key)

    # ------------------------------------------------------------------ #
    # Monitoring handlers (Section 3.2.5)
    # ------------------------------------------------------------------ #

    def _on_existing(self, message: ExistingMessage) -> None:
        if self.fleet.config.monitoring == "gossip":
            # Gossip mode routes freshness through the helper that also
            # retires silence reports and pending suspicions.
            self._gossip_note_heard(message.pair_key, message.round_id)
            return
        previous = self.last_heard.get(message.pair_key, -1)
        heard = max(previous, message.round_id)
        self.last_heard[message.pair_key] = heard
        if message.pair_key == self._monitored_pair:
            self._registry.watch_heard[self._index] = heard

    def _on_activation_notice(self, message: ActivationNotice) -> None:
        # A fresh activation counts as having just heard from that pair.
        heard = self.fleet.heartbeat_round
        self.last_heard[message.pair_key] = heard
        if message.pair_key == self._monitored_pair:
            self._registry.watch_heard[self._index] = heard
        if (
            self.fleet.config.hand_back
            and message.pair_key in self.adopted_pairs
            and message.sender != self.identity
        ):
            # Someone else (the revived owner, or a later replacement) now
            # answers for a pair this vehicle adopted: shed the load.
            self.adopted_pairs.remove(message.pair_key)
            self.fleet.on_adoption_released(self.identity, message.pair_key)

    # ------------------------------------------------------------------ #
    # Gossip failure detection (monitoring == "gossip")
    # ------------------------------------------------------------------ #

    def gossip_tick(self, round_id: int, miss_threshold: int) -> None:
        """One gossip round: heartbeat, report silence, spread digests,
        and (for the ring watcher) escalate accumulated suspicion.

        Runs for every live vehicle -- idle ones report and relay too --
        so the detector keeps enough independent observers even in cubes
        thinned out by crashes.
        """
        if self.broken:
            return
        fleet = self.fleet
        active = self.status.working == WorkingState.ACTIVE
        byzantine = fleet.failure_plan.is_byzantine_watcher(self.identity)
        if active:
            assert self.pair_key is not None
            self.send_many(
                self.cube_peers,
                ExistingMessage(self.identity, self.pair_key, round_id),
            )
        self._gossip_report_silence(round_id, miss_threshold, byzantine)
        self._gossip_send_digest(round_id)
        if active:
            self._gossip_check_suspicion(round_id, miss_threshold, byzantine)

    def _gossip_note_heard(self, pair_key: Point, heard: int) -> None:
        """Fresh liveness information for a pair: update ``last_heard``
        (mirroring the registry's watch-heard array), retire silence
        reports the freshness supersedes, and drop any open suspicion --
        a pair that spoke is not dead."""
        previous = self.last_heard.get(pair_key, -1)
        if heard <= previous:
            return
        self.last_heard[pair_key] = heard
        if pair_key == self._monitored_pair:
            self._registry.watch_heard[self._index] = heard
        reporters = self.gossip_reports.get(pair_key)
        if reporters:
            for reporter in [r for r, rnd in reporters.items() if rnd <= heard]:
                del reporters[reporter]
            if not reporters:
                del self.gossip_reports[pair_key]
        self.pending_suspicions.pop(pair_key, None)

    def _cube_pair_keys(self) -> List[Point]:
        """Black vertices of every pair of this vehicle's cube."""
        return [pair.black for pair in self.coloring.pairs]

    def _gossip_report_silence(
        self, round_id: int, miss_threshold: int, byzantine: bool
    ) -> None:
        """Record a silence report for every cube pair quiet past the miss
        threshold (a Byzantine watcher reports *every* pair silent -- the
        false-suspicion injection the quorum must mask)."""
        baseline = self.fleet.monitoring_baseline
        for pair_key in self._cube_pair_keys():
            if pair_key == self.pair_key:
                continue
            last = self.last_heard.get(pair_key, baseline)
            stale = round_id - last >= miss_threshold
            if byzantine:
                stale = True
            if not stale:
                continue
            reporters = self.gossip_reports.setdefault(pair_key, {})
            reporters[self.identity] = round_id

    def _gossip_send_digest(self, round_id: int) -> None:
        """Piggyback freshness entries and silence reports to ``fanout``
        deterministically drawn peers (keyed blake2b over the per-vehicle
        counter -- byte-identical at any worker or shard count)."""
        fleet = self.fleet
        counter = self._gossip_counter
        self._gossip_counter = counter + 1
        peers = select_peers(
            self.identity, counter, fleet.gossip_candidates(), fleet.config.gossip_fanout
        )
        if not peers:
            return
        silent = tuple(
            (pair_key, reporter, reported)
            for pair_key in sorted(self.gossip_reports)
            for reporter, reported in sorted(self.gossip_reports[pair_key].items())
        )
        digest = GossipDigest(
            self.identity, round_id, freshest_entries(self.last_heard), silent
        )
        self.send_many(peers, digest)

    def _gossip_check_suspicion(
        self, round_id: int, miss_threshold: int, byzantine: bool
    ) -> None:
        """Ring watcher's escalation: once ``suspicion_threshold`` distinct
        reporters agree the watched pair is silent, open (or refresh) a
        quorum collection by broadcasting a ``SuspectMessage``."""
        fleet = self.fleet
        watched = self.monitored_pair
        if watched is None or watched == self.pair_key:
            return
        if self.engaged_tag is not None:
            return
        last = self.last_heard.get(watched, fleet.monitoring_baseline)
        stale = round_id - last >= miss_threshold
        if byzantine:
            stale = True
        if not stale:
            return
        reporters = set(self.gossip_reports.get(watched, ()))
        reporters.add(self.identity)
        if not byzantine and len(reporters) < fleet.config.suspicion_threshold:
            return
        pending = self.pending_suspicions.get(watched)
        if pending is not None and round_id - pending["round"] < miss_threshold:
            return  # collection in flight; give the co-signatures time
        if pending is None:
            # Granted signatures accumulate across re-sends: under a lossy
            # channel each retry only needs to recover the missing ones.
            pending = {"granted": set(), "round": round_id}
            self.pending_suspicions[watched] = pending
        else:
            pending["round"] = round_id
        fleet.record_suspicion(self.identity, watched)
        self.send_many(
            self.cube_peers, SuspectMessage(self.identity, watched, round_id)
        )

    def _on_gossip_digest(self, message: GossipDigest) -> None:
        if self.broken:
            return
        for pair_key, heard in message.heard:
            self._gossip_note_heard(pair_key, heard)
        baseline = self.fleet.monitoring_baseline
        for pair_key, reporter, reported in message.silent:
            if pair_key == self.pair_key:
                continue  # this vehicle *is* the pair: obviously alive
            if reported <= self.last_heard.get(pair_key, baseline):
                continue  # superseded: the pair has spoken since
            reporters = self.gossip_reports.setdefault(pair_key, {})
            if reported > reporters.get(reporter, -1):
                reporters[reporter] = reported

    def _on_suspect(self, message: SuspectMessage) -> None:
        """Answer a co-signature request: grant only when this vehicle's
        *own* view of the pair is stale (a Byzantine attester inverts --
        forging grants for healthy pairs, withholding for dead ones)."""
        if self.broken:
            return
        fleet = self.fleet
        pair_key = message.pair_key
        last = self.last_heard.get(pair_key, fleet.monitoring_baseline)
        grant = message.round_id - last >= fleet.config.heartbeat_miss_threshold
        if pair_key == self.pair_key:
            grant = False  # asked to co-sign this vehicle's own death
        if fleet.failure_plan.is_byzantine_watcher(self.identity):
            grant = not grant
        fleet.record_attestation(self.identity, pair_key, grant)
        if grant:
            self.send(
                message.sender,
                AttestMessage(self.identity, pair_key, message.round_id, True),
            )
        # A refusal is silence: signatures cannot be forged on another's
        # behalf, so not sending *is* the refusal.

    def _on_attest(self, message: AttestMessage) -> None:
        """Collect a co-signature; with ``quorum`` distinct granters (and
        the watcher's own view still stale) the attested replacement
        search finally starts."""
        if self.broken or not message.granted:
            return
        pair_key = message.pair_key
        pending = self.pending_suspicions.get(pair_key)
        if pending is None:
            return  # resolved meanwhile (heartbeat arrived or takeover ran)
        pending["granted"].add(message.sender)
        fleet = self.fleet
        if len(pending["granted"]) < fleet.config.quorum:
            return
        round_id = fleet.heartbeat_round
        byzantine = fleet.failure_plan.is_byzantine_watcher(self.identity)
        last = self.last_heard.get(pair_key, fleet.monitoring_baseline)
        if not byzantine and round_id - last < fleet.config.heartbeat_miss_threshold:
            # The pair spoke while signatures were in flight.
            del self.pending_suspicions[pair_key]
            return
        if self.engaged_tag is not None:
            return  # busy with another computation; the case stays open
        del self.pending_suspicions[pair_key]
        self.gossip_reports.pop(pair_key, None)
        fleet.record_watch_initiation(self.identity, pair_key)
        self._gossip_note_heard(pair_key, round_id)  # debounce
        self.start_replacement_search(destination=pair_key, pair_key=pair_key)

    def offer_hand_back(self, pair_key: Point, owner: Point) -> None:
        """Offer an adopted pair back to its revived original owner.

        Sent as the legal *escalated* move order -- the only arrow through
        which an ACTIVE vehicle accepts responsibility for a pair -- and
        addressed directly to the owner, so the existing Phase II endpoint
        logic (``_on_move`` -> ``_adopt_pair``'s reclaim branch) handles it
        without any new message type.
        """
        tag = (self.identity, self.fleet.next_computation_round())
        self.send(
            owner,
            MoveMessage(tag, self.identity, pair_key, pair_key, escalated=True),
        )

    def tick_search_timeout(self, timeout: int) -> None:
        """Abandon a diffusing computation stuck for ``timeout`` heartbeat rounds.

        Under a reliable channel every Phase I computation terminates
        between rounds, so this never fires.  Under message loss or
        corruption the replies funding the deficit counters can vanish,
        leaving the vehicle engaged forever -- and an engaged vehicle
        refuses new computations and stops watching its monitored pair.
        After ``timeout`` consecutive rounds on one tag the engagement is
        released through the legal ``(*, searching) -> (*, waiting)``
        arrow.  A starved *initiator* treats the timeout as best-effort
        termination detection: a positive reply travels up the child chain
        immediately (not waiting for deficits), so if a child is already
        known the move order is launched along the located path -- only the
        chain's own messages needed to survive the lossy channel, not the
        whole flood.  With no child the search is recorded as failed and
        the monitoring loop can start a fresh computation for the
        still-silent pair.
        """
        self._tick_escalation_timeouts(timeout)
        if self.broken or self.engaged_tag is None:
            self._engaged_tag_seen = None
            self._engaged_rounds = 0
            self._release_engaged_bit()
            return
        if self.engaged_tag == self._engaged_tag_seen:
            self._engaged_rounds += 1
        else:
            self._engaged_tag_seen = self.engaged_tag
            self._engaged_rounds = 1
        if self._engaged_rounds < timeout:
            return
        tag = self.engaged_tag
        self.engaged_tag = None
        self._engaged_tag_seen = None
        self._engaged_rounds = 0
        self._release_engaged_bit()
        self.status.set_transfer(TransferState.WAITING)
        if tag in self.initiated:
            self._finish_own_computation(tag)

    def _tick_escalation_timeouts(self, timeout: int) -> None:
        """Starvation clock for escalated rounds (the cross-level analogue).

        An escalation level whose boundary replies were eaten by the
        channel would leave its deficit counter funded forever; after
        ``timeout`` heartbeat rounds stuck on one level the missing replies
        are treated as negative -- best-effort termination detection, the
        same contract the intra-cube clock provides.  Any volunteer that
        *did* reply is dispatched; otherwise the search widens or fails.
        """
        if self.broken or not self.escalations:
            return
        for tag in list(self.escalations):
            esc = self.escalations.get(tag)
            if esc is None:
                continue
            esc["rounds"] += 1
            if esc["rounds"] >= timeout:
                self._conclude_escalation_level(tag)

    def heartbeat(self, round_id: int, miss_threshold: int) -> None:
        """One heartbeat round: announce existence and check the watched pair."""
        if self.broken or self.status.working != WorkingState.ACTIVE:
            return
        assert self.pair_key is not None
        if self.fleet.config.escalation:
            self._heartbeat_hierarchical(round_id, miss_threshold)
            return
        # The dominant message volume under monitoring: one cube-wide
        # heartbeat broadcast per active vehicle per round, emitted as a
        # single batch through the transport's fast path.
        self.send_many(
            self.cube_peers, ExistingMessage(self.identity, self.pair_key, round_id)
        )
        if self.monitored_pair is None or self.monitored_pair == self.pair_key:
            return
        if self.engaged_tag is not None:
            # Busy with another computation; re-check on the next round.
            return
        last = self.last_heard.get(self.monitored_pair, self.fleet.monitoring_baseline)
        if round_id - last < miss_threshold:
            return
        # The watched pair has been silent too long: its vehicle is done (and
        # failed to initiate) or dead.  Start a replacement on its behalf.
        self.fleet.record_watch_initiation(self.identity, self.monitored_pair)
        self.last_heard[self.monitored_pair] = round_id  # debounce
        self._registry.watch_heard[self._index] = round_id
        self.start_replacement_search(
            destination=self.monitored_pair, pair_key=self.monitored_pair
        )

    def _heartbeat_hierarchical(self, round_id: int, miss_threshold: int) -> None:
        """The escalation-mode heartbeat: fleet-wide watch ring, adopted pairs.

        The vehicle announces existence for its own pair *and* every pair
        it adopted; each announcement reaches the pair's cube and the cube
        of the pair's ring watcher (the monitoring pointer may now cross a
        cube boundary).  Watch duty likewise follows the fleet-wide ring,
        and an adopter watches on behalf of its adopted pairs too, so the
        ring stays closed across adoptions.
        """
        answered = [self.pair_key] + self.adopted_pairs
        for pair_key in answered:
            self.send_many(
                self.fleet.heartbeat_audience(pair_key, exclude=self.identity),
                ExistingMessage(self.identity, pair_key, round_id),
            )
        if self.engaged_tag is not None or self.escalations:
            # Busy with another computation; re-check on the next round.
            return
        seen = set(answered)
        for pair_key in answered:
            watched = self.fleet.watched_pair(pair_key)
            if watched is None or watched in seen:
                continue
            seen.add(watched)
            last = self.last_heard.get(watched, self.fleet.monitoring_baseline)
            if round_id - last < miss_threshold:
                continue
            self.fleet.record_watch_initiation(self.identity, watched)
            self.last_heard[watched] = round_id  # debounce
            if watched == self._monitored_pair:
                self._registry.watch_heard[self._index] = round_id
            self.start_replacement_search(destination=watched, pair_key=watched)
            return  # one diffusing computation at a time

    # ------------------------------------------------------------------ #
    # failures (scenario 3)
    # ------------------------------------------------------------------ #

    def mark_broken(self) -> None:
        """The vehicle breaks down: it can no longer move, serve or heartbeat.

        Its radio keeps working (the thesis's communication model never
        charges energy for messages), so Phase I computations that query it
        still receive a (negative) reply and terminate.
        """
        self.broken = True
        self._registry.broken[self._index] = 1

    def mark_repaired(self) -> None:
        """Churn rejoin: the broken vehicle is repaired in place.

        Its working state and registry entry are untouched -- if a
        replacement already answers for its pair, the repaired vehicle
        simply becomes a healthy idle peer again.
        """
        self.broken = False
        self._registry.broken[self._index] = 0

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """A small dictionary of the vehicle's externally relevant state."""
        return {
            "home": self.home,
            "position": self.position,
            "state": str(self.status),
            "pair": self.pair_key,
            "adopted_pairs": list(self.adopted_pairs),
            "energy_used": self.energy_used,
            "travel": self.travel_energy,
            "service": self.service_energy,
            "jobs_served": self.jobs_served,
        }
