"""Workload generators: demand maps and job sequences for the experiments.

The thesis motivates the CMVRP with mobile-sensor scenarios and analyses
three canonical demand shapes (Section 2.1): a filled square, a line, and a
single point.  This package generates those shapes plus the randomized
workloads the benchmarks sweep over, and the arrival orderings that turn a
demand map into an online job sequence.
"""

from repro.workloads.generators import (
    clustered_demand,
    corner_demand,
    diurnal_demand,
    grid_demand,
    heavy_tailed_demand,
    hotspot_demand,
    line_demand,
    mobility_demand,
    point_demand,
    random_uniform_demand,
    square_demand,
    zipf_demand,
)
from repro.workloads.arrivals import (
    alternating_arrivals,
    bursty_arrivals,
    random_arrivals,
    sequential_arrivals,
)
from repro.workloads.library import (
    ScenarioFamily,
    UnknownFamilyError,
    available_families,
    build_family_demand,
    build_family_failures,
    family_broken_failures,
    family_config,
    family_descriptions,
    family_matrix,
    family_spec,
    get_family,
    register_family,
)
from repro.workloads.scenarios import Scenario, paper_scenarios

__all__ = [
    "square_demand",
    "line_demand",
    "point_demand",
    "random_uniform_demand",
    "zipf_demand",
    "clustered_demand",
    "hotspot_demand",
    "heavy_tailed_demand",
    "corner_demand",
    "diurnal_demand",
    "grid_demand",
    "mobility_demand",
    "sequential_arrivals",
    "random_arrivals",
    "alternating_arrivals",
    "bursty_arrivals",
    "ScenarioFamily",
    "UnknownFamilyError",
    "register_family",
    "get_family",
    "available_families",
    "family_descriptions",
    "build_family_demand",
    "build_family_failures",
    "family_broken_failures",
    "family_spec",
    "family_config",
    "family_matrix",
    "Scenario",
    "paper_scenarios",
]
