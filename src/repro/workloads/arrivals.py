"""Arrival orderings: turning a demand map into an online job sequence.

The offline quantity ``W_off`` only depends on the demand map, but the
online strategy sees jobs one at a time and (Chapter 4 shows) the *order*
can matter once vehicles may break.  These helpers produce the orderings
used in the experiments:

* :func:`sequential_arrivals` -- positions in sorted order, all of a
  position's jobs back to back (the gentlest ordering).
* :func:`random_arrivals` -- a uniformly random interleaving.
* :func:`alternating_arrivals` -- round-robin over the positions, the
  adversarial pattern of the Figure 4.1 instance.
* :func:`bursty_arrivals` -- all of one position's jobs back to back, but
  positions in random order and split into bursts: the "flash crowd"
  pattern the scenario library's bursty family uses.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional

import numpy as np

from repro.core.demand import DemandMap, Job, JobSequence
from repro.grid.lattice import Point

__all__ = [
    "sequential_arrivals",
    "random_arrivals",
    "alternating_arrivals",
    "bursty_arrivals",
    "streaming_arrivals",
]


def _unit_positions(demand: DemandMap) -> List[Point]:
    """Expand a demand map into one entry per unit job (demands are rounded up)."""
    positions: List[Point] = []
    for point, value in demand.items():
        count = int(math.ceil(value - 1e-12))
        positions.extend([point] * count)
    return positions


def sequential_arrivals(demand: DemandMap) -> JobSequence:
    """All jobs of the lexicographically first position, then the next, ..."""
    return JobSequence.from_positions(_unit_positions(demand))


def random_arrivals(demand: DemandMap, rng: np.random.Generator) -> JobSequence:
    """A uniformly random interleaving of the unit jobs."""
    positions = _unit_positions(demand)
    order = rng.permutation(len(positions))
    return JobSequence.from_positions([positions[i] for i in order])


def alternating_arrivals(demand: DemandMap, *, rounds: Optional[int] = None) -> JobSequence:
    """Round-robin over the demand positions (the Figure 4.1 adversary).

    Each round visits every position that still has unserved demand once, in
    sorted order; ``rounds`` caps the number of rounds (default: until all
    demand is exhausted).
    """
    remaining = {point: int(math.ceil(value - 1e-12)) for point, value in demand.items()}
    positions: List[Point] = []
    executed = 0
    while any(count > 0 for count in remaining.values()):
        if rounds is not None and executed >= rounds:
            break
        for point in sorted(remaining):
            if remaining[point] > 0:
                positions.append(point)
                remaining[point] -= 1
        executed += 1
    return JobSequence.from_positions(positions)


def bursty_arrivals(
    demand: DemandMap,
    rng: np.random.Generator,
    *,
    burst_size: int = 8,
) -> JobSequence:
    """Bursts of up to ``burst_size`` same-position jobs, burst order random.

    Each position's unit jobs are chopped into runs of ``burst_size``; the
    runs are then shuffled.  A region therefore sees its load arrive in
    concentrated slams separated by unrelated traffic -- the arrival-side
    stress pattern of the scenario library's bursty family (the demand map,
    and hence all offline quantities, are unchanged).
    """
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    bursts: List[List[Point]] = []
    for point, value in sorted(demand.items()):
        count = int(math.ceil(value - 1e-12))
        while count > 0:
            take = min(burst_size, count)
            bursts.append([point] * take)
            count -= take
    order = rng.permutation(len(bursts))
    positions: List[Point] = []
    for index in order:
        positions.extend(bursts[index])
    return JobSequence.from_positions(positions)


def streaming_arrivals(demand: DemandMap, *, jobs: Optional[int] = None):
    """A lazy generator of unit jobs cycling the demand positions.

    The long-horizon workload of the service harness: position ``k % P`` of
    the demand's unit expansion receives job ``k`` at time ``k + 1`` (the
    same ``from_positions`` clock every materialized ordering uses), so an
    arbitrarily long run revisits the demand pattern forever without ever
    materializing a :class:`~repro.core.demand.JobSequence`.  ``jobs=None``
    streams forever (pair it with a run duration).  Deterministic: two
    iterations over the same demand yield identical jobs, which is what
    lets a resumed run reconstruct the remaining stream with
    ``itertools.islice``.
    """
    if jobs is not None and jobs < 0:
        raise ValueError("jobs must be non-negative")
    positions = _unit_positions(demand)
    if not positions and (jobs is None or jobs > 0):
        raise ValueError("cannot stream jobs from an empty demand map")
    counter = range(jobs) if jobs is not None else itertools.count()
    for index in counter:
        yield Job(
            time=float(index + 1),
            position=positions[index % len(positions)],
            energy=1.0,
        )
