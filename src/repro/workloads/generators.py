"""Demand-map generators.

Deterministic generators reproduce the worked examples of Section 2.1
(square, line, point); randomized generators (uniform, Zipf-skewed,
clustered) provide the broader sweeps used by the benchmarks and the
property-based tests.  Every randomized generator takes an explicit
``numpy.random.Generator`` so runs are reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.demand import DemandMap
from repro.grid.lattice import Box, Point

__all__ = [
    "square_demand",
    "line_demand",
    "point_demand",
    "random_uniform_demand",
    "zipf_demand",
    "clustered_demand",
]


def square_demand(side: int, demand: float, *, origin: Sequence[int] = (0, 0)) -> DemandMap:
    """Example 2.1.1 / Figure 2.1(a): demand ``d`` at every point of an
    ``side x side`` square, zero elsewhere."""
    if side < 1:
        raise ValueError("side must be at least 1")
    box = Box.cube(tuple(origin), side)
    return DemandMap.uniform_on_box(box, demand)


def line_demand(
    length: int,
    demand: float,
    *,
    origin: Sequence[int] = (0, 0),
    axis: int = 0,
    dim: int = 2,
) -> DemandMap:
    """Example 2.1.2 / Figure 2.1(b): demand ``d`` at every point of a line
    of ``length`` lattice points embedded in ``Z^dim``."""
    if length < 1:
        raise ValueError("length must be at least 1")
    if not 0 <= axis < dim:
        raise ValueError("axis out of range")
    origin = tuple(int(c) for c in origin)
    if len(origin) != dim:
        raise ValueError("origin dimension mismatch")
    demands = {}
    for step in range(length):
        point = list(origin)
        point[axis] += step
        demands[tuple(point)] = demand
    return DemandMap(demands, dim=dim)


def point_demand(demand: float, *, position: Sequence[int] = (0, 0)) -> DemandMap:
    """Example 2.1.3 / Figure 2.1(c): all demand at a single point."""
    return DemandMap.point_demand(tuple(position), demand)


def random_uniform_demand(
    window: Box,
    total_jobs: int,
    rng: np.random.Generator,
) -> DemandMap:
    """``total_jobs`` unit jobs thrown uniformly at random into ``window``."""
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    demands: dict = {}
    lo = np.array(window.lo)
    lengths = np.array(window.side_lengths)
    for _ in range(total_jobs):
        offset = rng.integers(0, lengths)
        point: Point = tuple(int(c) for c in (lo + offset))
        demands[point] = demands.get(point, 0.0) + 1.0
    return DemandMap(demands, dim=window.dim)


def zipf_demand(
    window: Box,
    total_jobs: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.2,
) -> DemandMap:
    """Skewed demand: positions ranked by a random permutation receive jobs
    with Zipf(``exponent``) probabilities.

    Heavy-tailed per-point demand is the regime where the single-point
    example dominates and the cube maximization is most interesting.
    """
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    points = list(window.points())
    rng.shuffle(points)
    weights = np.array([1.0 / (rank + 1) ** exponent for rank in range(len(points))])
    weights /= weights.sum()
    counts = rng.multinomial(total_jobs, weights)
    demands = {
        point: float(count) for point, count in zip(points, counts) if count > 0
    }
    return DemandMap(demands, dim=window.dim)


def clustered_demand(
    window: Box,
    clusters: int,
    jobs_per_cluster: int,
    rng: np.random.Generator,
    *,
    spread: int = 2,
) -> DemandMap:
    """Demand concentrated around ``clusters`` random hot spots.

    Models the "seismic events" scenario of the introduction: bursts of
    service requests in small neighborhoods of a few epicenters.
    """
    if clusters < 1 or jobs_per_cluster < 0:
        raise ValueError("clusters must be >= 1 and jobs_per_cluster >= 0")
    demands: dict = {}
    lo = np.array(window.lo)
    hi = np.array(window.hi)
    lengths = np.array(window.side_lengths)
    for _ in range(clusters):
        center = lo + rng.integers(0, lengths)
        for _ in range(jobs_per_cluster):
            offset = rng.integers(-spread, spread + 1, size=window.dim)
            point_arr = np.clip(center + offset, lo, hi)
            point: Point = tuple(int(c) for c in point_arr)
            demands[point] = demands.get(point, 0.0) + 1.0
    return DemandMap(demands, dim=window.dim)
