"""Demand-map generators.

Deterministic generators reproduce the worked examples of Section 2.1
(square, line, point); randomized generators (uniform, Zipf-skewed,
clustered) provide the broader sweeps used by the benchmarks and the
property-based tests.  Every randomized generator takes an explicit
``numpy.random.Generator`` so runs are reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.demand import DemandMap
from repro.grid.lattice import Box, Point

__all__ = [
    "square_demand",
    "line_demand",
    "point_demand",
    "random_uniform_demand",
    "zipf_demand",
    "clustered_demand",
    "hotspot_demand",
    "heavy_tailed_demand",
    "corner_demand",
    "grid_demand",
    "diurnal_demand",
    "mobility_demand",
]


def square_demand(side: int, demand: float, *, origin: Sequence[int] = (0, 0)) -> DemandMap:
    """Example 2.1.1 / Figure 2.1(a): demand ``d`` at every point of an
    ``side x side`` square, zero elsewhere."""
    if side < 1:
        raise ValueError("side must be at least 1")
    box = Box.cube(tuple(origin), side)
    return DemandMap.uniform_on_box(box, demand)


def line_demand(
    length: int,
    demand: float,
    *,
    origin: Sequence[int] = (0, 0),
    axis: int = 0,
    dim: int = 2,
) -> DemandMap:
    """Example 2.1.2 / Figure 2.1(b): demand ``d`` at every point of a line
    of ``length`` lattice points embedded in ``Z^dim``."""
    if length < 1:
        raise ValueError("length must be at least 1")
    if not 0 <= axis < dim:
        raise ValueError("axis out of range")
    origin = tuple(int(c) for c in origin)
    if len(origin) != dim:
        raise ValueError("origin dimension mismatch")
    demands = {}
    for step in range(length):
        point = list(origin)
        point[axis] += step
        demands[tuple(point)] = demand
    return DemandMap(demands, dim=dim)


def point_demand(demand: float, *, position: Sequence[int] = (0, 0)) -> DemandMap:
    """Example 2.1.3 / Figure 2.1(c): all demand at a single point."""
    return DemandMap.point_demand(tuple(position), demand)


def random_uniform_demand(
    window: Box,
    total_jobs: int,
    rng: np.random.Generator,
) -> DemandMap:
    """``total_jobs`` unit jobs thrown uniformly at random into ``window``."""
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    demands: dict = {}
    lo = np.array(window.lo)
    lengths = np.array(window.side_lengths)
    for _ in range(total_jobs):
        offset = rng.integers(0, lengths)
        point: Point = tuple(int(c) for c in (lo + offset))
        demands[point] = demands.get(point, 0.0) + 1.0
    return DemandMap(demands, dim=window.dim)


def zipf_demand(
    window: Box,
    total_jobs: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.2,
) -> DemandMap:
    """Skewed demand: positions ranked by a random permutation receive jobs
    with Zipf(``exponent``) probabilities.

    Heavy-tailed per-point demand is the regime where the single-point
    example dominates and the cube maximization is most interesting.
    """
    if total_jobs < 0:
        raise ValueError("total_jobs must be non-negative")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    points = list(window.points())
    rng.shuffle(points)
    weights = np.array([1.0 / (rank + 1) ** exponent for rank in range(len(points))])
    weights /= weights.sum()
    counts = rng.multinomial(total_jobs, weights)
    demands = {
        point: float(count) for point, count in zip(points, counts) if count > 0
    }
    return DemandMap(demands, dim=window.dim)


def clustered_demand(
    window: Box,
    clusters: int,
    jobs_per_cluster: int,
    rng: np.random.Generator,
    *,
    spread: int = 2,
) -> DemandMap:
    """Demand concentrated around ``clusters`` random hot spots.

    Models the "seismic events" scenario of the introduction: bursts of
    service requests in small neighborhoods of a few epicenters.
    """
    if clusters < 1 or jobs_per_cluster < 0:
        raise ValueError("clusters must be >= 1 and jobs_per_cluster >= 0")
    demands: dict = {}
    lo = np.array(window.lo)
    hi = np.array(window.hi)
    lengths = np.array(window.side_lengths)
    for _ in range(clusters):
        center = lo + rng.integers(0, lengths)
        for _ in range(jobs_per_cluster):
            offset = rng.integers(-spread, spread + 1, size=window.dim)
            point_arr = np.clip(center + offset, lo, hi)
            point: Point = tuple(int(c) for c in point_arr)
            demands[point] = demands.get(point, 0.0) + 1.0
    return DemandMap(demands, dim=window.dim)


def hotspot_demand(
    window: Box,
    hotspots: int,
    jobs: int,
    rng: np.random.Generator,
    *,
    hotspot_share: float = 0.8,
    spread: int = 1,
) -> DemandMap:
    """A thin uniform background with a few cells carrying most of the load.

    ``hotspot_share`` of the jobs land in tight neighborhoods of
    ``hotspots`` random cells; the rest scatter uniformly.  This is the
    "flash crowd" pattern: the cube maximization must find the hot cells
    while the background keeps every region non-trivial.
    """
    if hotspots < 1 or jobs < 0:
        raise ValueError("hotspots must be >= 1 and jobs >= 0")
    if not 0.0 <= hotspot_share <= 1.0:
        raise ValueError("hotspot_share must lie in [0, 1]")
    hot_jobs = int(round(jobs * hotspot_share))
    hot = clustered_demand(
        window, hotspots, hot_jobs // hotspots if hotspots else 0, rng, spread=spread
    )
    background = random_uniform_demand(window, jobs - hot_jobs, rng)
    return hot.merged_with(background)


def heavy_tailed_demand(
    window: Box,
    points: int,
    rng: np.random.Generator,
    *,
    alpha: float = 1.3,
    scale: float = 1.0,
) -> DemandMap:
    """Per-point demands drawn from a Pareto(``alpha``) distribution.

    Unlike :func:`zipf_demand` (many unit jobs at skewed *positions*), the
    tail here lives in the per-point *magnitudes*: a few points demand
    orders of magnitude more than the median, the regime where the
    single-point worked example dominates the cube maximization.
    """
    if points < 0:
        raise ValueError("points must be non-negative")
    if alpha <= 0 or scale <= 0:
        raise ValueError("alpha and scale must be positive")
    demands: dict = {}
    lo = np.array(window.lo)
    lengths = np.array(window.side_lengths)
    for _ in range(points):
        offset = rng.integers(0, lengths)
        point: Point = tuple(int(c) for c in (lo + offset))
        magnitude = float(np.ceil(scale * (1.0 + rng.pareto(alpha))))
        demands[point] = demands.get(point, 0.0) + magnitude
    return DemandMap(demands, dim=window.dim)


def corner_demand(
    window: Box,
    per_corner: float,
    *,
    center_jobs: float = 0.0,
) -> DemandMap:
    """Adversarial placement: all demand at the corners of ``window``.

    The ``2^dim`` corners are the points at maximum distance from the
    window's center, so depot-based baselines (transportation with a
    central supply, single-depot CVRP/TSP) pay the worst-case travel while
    the per-cube characterization stays small.  ``center_jobs`` optionally
    adds demand at the center, forcing plans to straddle both extremes.
    """
    if per_corner < 0 or center_jobs < 0:
        raise ValueError("demands must be non-negative")
    demands: dict = {}
    corners = [window.lo, window.hi]
    for mask in range(2 ** window.dim):
        corner = tuple(
            corners[(mask >> axis) & 1][axis] for axis in range(window.dim)
        )
        demands[corner] = demands.get(corner, 0.0) + per_corner
    if center_jobs > 0:
        center = tuple(int(c) for c in window.center())
        demands[center] = demands.get(center, 0.0) + center_jobs
    return DemandMap({p: v for p, v in demands.items() if v > 0}, dim=window.dim)


def diurnal_demand(
    window: Box,
    jobs: int,
    rng: np.random.Generator,
    *,
    periods: float = 1.0,
    trough: float = 0.2,
    axis: int = 0,
) -> DemandMap:
    """A time-of-day sinusoidal load curve laid out along one axis.

    Coordinate ``axis`` plays the role of the clock: slice ``x`` of the
    window receives jobs in proportion to ``trough + (1 - trough) *
    (1 + sin(2 pi * periods * x / width)) / 2`` -- a day's worth of load
    rising to a peak and falling to a ``trough``-deep night, repeated
    ``periods`` times across the window.  Within a slice, jobs scatter
    uniformly over the remaining axes.  Served with ``sequential`` arrivals
    (slices in sorted order), the *arrival rate* then follows the same
    sinusoid as the simulation clock advances, which is what makes the
    family a temporal stress test and not just another spatial shape.
    """
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if periods <= 0:
        raise ValueError("periods must be positive")
    if not 0.0 <= trough <= 1.0:
        raise ValueError("trough must lie in [0, 1]")
    if not 0 <= axis < window.dim:
        raise ValueError("axis out of range")
    lo = np.array(window.lo)
    lengths = np.array(window.side_lengths)
    width = int(lengths[axis])
    phases = 2.0 * np.pi * periods * np.arange(width) / width
    weights = trough + (1.0 - trough) * (1.0 + np.sin(phases)) / 2.0
    weights /= weights.sum()
    counts = rng.multinomial(jobs, weights)
    demands: dict = {}
    for slice_index, count in enumerate(counts):
        for _ in range(int(count)):
            offset = rng.integers(0, lengths)
            offset[axis] = slice_index
            point: Point = tuple(int(c) for c in (lo + offset))
            demands[point] = demands.get(point, 0.0) + 1.0
    return DemandMap(demands, dim=window.dim)


def mobility_demand(
    window: Box,
    walkers: int,
    steps: int,
    rng: np.random.Generator,
    *,
    step: int = 1,
) -> DemandMap:
    """Demand deposited by drifting service consumers (a mobility trace).

    ``walkers`` independent consumers start at random positions and perform
    lattice random walks of ``steps`` moves (each move shifts one axis by
    up to ``step``, clamping at the window boundary -- a walker drawing an
    outward move stays pinned at the edge); every position visited deposits
    one unit job.  The result is the spatial footprint of *moving* demand -- smeared
    trails rather than fixed hotspots -- so between consecutive jobs of one
    walker the service position drifts by at most ``step`` per axis.  This
    is the workload regime where a transport whose delay grows with lattice
    distance (``distance-latency``) separates near-field from far-field
    traffic instead of charging a flat rate.
    """
    if walkers < 1 or steps < 1:
        raise ValueError("walkers and steps must be at least 1")
    if step < 1:
        raise ValueError("step must be at least 1")
    lo = np.array(window.lo)
    hi = np.array(window.hi)
    lengths = np.array(window.side_lengths)
    demands: dict = {}
    for _ in range(walkers):
        position = lo + rng.integers(0, lengths)
        for _ in range(steps):
            point: Point = tuple(int(c) for c in position)
            demands[point] = demands.get(point, 0.0) + 1.0
            axis = int(rng.integers(0, window.dim))
            delta = int(rng.integers(-step, step + 1))
            position[axis] = int(np.clip(position[axis] + delta, lo[axis], hi[axis]))
    return DemandMap(demands, dim=window.dim)


def grid_demand(
    side: int,
    demand_per_point: float,
    *,
    stride: int = 1,
    origin: Optional[Sequence[int]] = None,
    dim: int = 2,
) -> DemandMap:
    """Uniform demand on a regular ``side x side`` grid with ``stride`` spacing.

    The scale-up workhorse: ``side**dim`` demand points spread over a
    ``(side * stride)``-wide window, which makes the resulting fleet size
    grow with ``side**dim`` in a predictable way.  ``origin`` defaults to
    the all-zeros point of ``Z^dim``.
    """
    if side < 1 or stride < 1:
        raise ValueError("side and stride must be at least 1")
    if demand_per_point < 0:
        raise ValueError("demand must be non-negative")
    origin = (0,) * dim if origin is None else tuple(int(c) for c in origin)
    if len(origin) != dim:
        raise ValueError("origin dimension mismatch")
    demands = {}
    for index in np.ndindex(*([side] * dim)):
        point = tuple(o + i * stride for o, i in zip(origin, index))
        demands[point] = demand_per_point
    return DemandMap(demands, dim=dim)
