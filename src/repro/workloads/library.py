"""The adversarial scenario-family registry.

A *scenario family* is a named, parameterized recipe for a whole class of
workloads: "hotspot demand over an ``s x s`` window", "a fleet with timed
churn", "a network partition through the middle of the job sequence".
Families are the unit the sweep tooling enumerates -- ``repro sweep
--families all`` and the differential test suite iterate this registry, so
adding a family here makes it reachable from the API, the CLI, the
benchmarks, and the property tests with zero per-solver wiring.

Each :class:`ScenarioFamily` bundles

* a demand **builder** ``build(params, rng) -> DemandMap`` (the workload's
  spatial shape, deterministic per ``(params, seed)``),
* an optional **failure builder** ``failures(params, demand, rng)`` that
  derives the family's failure injection -- crashed regions, churn
  schedules, partition windows -- expressed on the job clock,
* ``defaults`` (laptop-scale) and ``small`` (CI-scale) parameter presets,
* a default arrival ``order``.

:func:`family_spec` turns a family into a plain
:class:`~repro.api.config.ScenarioSpec` (the spec's ``family`` field keeps
the run config frozen, hashable, and JSON round-trippable), and
:func:`family_config` / :func:`family_matrix` produce ready-to-run
:class:`~repro.api.config.RunConfig` objects with the family's failure
plan attached to failure-aware solvers.

To add a family: write (or reuse) a generator in
:mod:`repro.workloads.generators`, call :func:`register_family` with a
builder and presets, and the entire toolchain picks it up.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.demand import DemandMap
from repro.distsim.failures import ChurnSpec, PartitionSpec
from repro.grid.lattice import Box
from repro.workloads.generators import (
    clustered_demand,
    corner_demand,
    diurnal_demand,
    grid_demand,
    heavy_tailed_demand,
    hotspot_demand,
    mobility_demand,
    random_uniform_demand,
)

__all__ = [
    "ScenarioFamily",
    "UnknownFamilyError",
    "register_family",
    "get_family",
    "available_families",
    "family_descriptions",
    "build_family_demand",
    "build_family_failures",
    "family_broken_failures",
    "family_spec",
    "family_config",
    "family_matrix",
    "FAMILY_PRESETS",
]

DemandBuilder = Callable[[Dict[str, Any], np.random.Generator], DemandMap]
FailureBuilder = Callable[[Dict[str, Any], DemandMap, np.random.Generator], Any]

#: Recognized parameter presets: ``None``/"default" uses ``defaults``,
#: "small" overlays the CI-scale overrides.
FAMILY_PRESETS = ("default", "small")

#: Seed salts so the demand rng, the failure rng, the transport seed, and
#: the arrival rng of one scenario seed never share a stream.
_DEMAND_SALT = 0xD117
_FAILURE_SALT = 0xFA11
_TRANSPORT_SALT = 0x7A4


class UnknownFamilyError(KeyError):
    """Raised when a scenario family name is not registered."""

    def __init__(self, name: str, available: List[str]) -> None:
        self.name = name
        self.available = available
        super().__init__(
            f"unknown scenario family {name!r}; registered families: "
            f"{', '.join(available) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class ScenarioFamily:
    """One named, parameterized scenario recipe."""

    name: str
    description: str
    build: DemandBuilder
    #: Laptop-scale default parameters (must be JSON-serializable values).
    defaults: Mapping[str, Any]
    #: CI-scale overrides layered on top of ``defaults`` for quick runs.
    small: Mapping[str, Any] = field(default_factory=dict)
    #: Arrival ordering the family is designed around.
    default_order: str = "random"
    #: Optional failure injection derived from the parameters and demand.
    failures: Optional[FailureBuilder] = None
    tags: Tuple[str, ...] = ()

    def params(
        self, overrides: Optional[Mapping[str, Any]] = None, *, preset: Optional[str] = None
    ) -> Dict[str, Any]:
        """Resolved parameters: defaults, then preset overlay, then overrides."""
        if preset not in (None, *FAMILY_PRESETS):
            raise ValueError(f"preset must be one of {FAMILY_PRESETS}, got {preset!r}")
        resolved = dict(self.defaults)
        if preset == "small":
            resolved.update(self.small)
        if overrides:
            unknown = set(overrides) - set(resolved)
            if unknown:
                raise ValueError(
                    f"unknown parameters for family {self.name!r}: {sorted(unknown)}"
                )
            resolved.update(overrides)
        return resolved


_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily, *, override: bool = False) -> ScenarioFamily:
    """Install a family in the registry (name collisions are errors)."""
    if family.name in _FAMILIES and not override:
        raise ValueError(f"scenario family {family.name!r} is already registered")
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> ScenarioFamily:
    """Look a family up by name (raises :class:`UnknownFamilyError`)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise UnknownFamilyError(name, available_families()) from None


def available_families() -> List[str]:
    """Registered family names, sorted."""
    return sorted(_FAMILIES)


def family_descriptions() -> Dict[str, str]:
    """Mapping of registered name -> one-line description (sorted by name)."""
    return {name: _FAMILIES[name].description for name in available_families()}


def _params_key(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@functools.lru_cache(maxsize=512)
def _cached_demand(name: str, params_key: Tuple[Tuple[str, Any], ...], seed: int) -> DemandMap:
    family = get_family(name)
    rng = np.random.default_rng((seed, _DEMAND_SALT))
    return family.build(dict(params_key), rng)


def build_family_demand(
    name: str, params: Optional[Mapping[str, Any]] = None, *, seed: int = 0
) -> DemandMap:
    """The family's demand map for one ``(params, seed)`` -- cached, since
    demand maps are immutable and the engine resolves specs on every run."""
    family = get_family(name)
    resolved = family.params(params)
    return _cached_demand(name, _params_key(resolved), seed)


def build_family_failures(
    name: str, params: Optional[Mapping[str, Any]] = None, *, seed: int = 0
):
    """The family's :class:`~repro.api.config.FailureSpec` (``None`` for
    failure-free families), deterministic per ``(params, seed)``."""
    family = get_family(name)
    if family.failures is None:
        return None
    resolved = family.params(params)
    demand = _cached_demand(name, _params_key(resolved), seed)
    rng = np.random.default_rng((seed, _FAILURE_SALT))
    return family.failures(resolved, demand, rng)


def family_broken_failures(
    name: str, params: Optional[Mapping[str, Any]] = None, *, seed: int = 0
):
    """The failure spec an ``online-broken`` run of this family should use.

    Failure families contribute their own plan; for failure-free families a
    minimal deterministic crash (the lexicographically first support point)
    is synthesized, since that solver requires a non-empty spec.  Both the
    config builders here and the CLI resolve through this one helper, so
    ``run``, ``compare`` and ``sweep`` agree on what a family x
    ``online-broken`` pair means.
    """
    from repro.api.config import FailureSpec

    spec = build_family_failures(name, params, seed=seed)
    if spec is not None and not spec.without_transport().is_empty():
        return spec
    # Failure-free family, or one whose only contribution is a transport
    # (e.g. mobility's distance-latency channel): synthesize the minimal
    # deterministic crash so the solver always has a physical failure --
    # and so an explicit transport stripping the bundled one (CLI/engine
    # precedence) can never leave the spec empty.
    demand = build_family_demand(name, params, seed=seed)
    crashed = (min(demand.support()),)
    if spec is not None and spec.transport is not None:
        return FailureSpec(crashed=crashed, transport=spec.transport)
    return FailureSpec(crashed=crashed)


def family_spec(
    name: str,
    *,
    seed: int = 0,
    order: Optional[str] = None,
    preset: Optional[str] = None,
    **overrides: Any,
):
    """A frozen :class:`~repro.api.config.ScenarioSpec` for this family."""
    from repro.api.config import ScenarioSpec

    family = get_family(name)
    return ScenarioSpec(
        name=name,
        family=name,
        family_params=tuple(sorted(family.params(overrides, preset=preset).items())),
        order=order if order is not None else family.default_order,
        seed=seed,
    )


def family_config(
    name: str,
    solver: str,
    *,
    seed: int = 0,
    capacity: Any = "theorem",
    order: Optional[str] = None,
    preset: Optional[str] = None,
    recovery_rounds: Optional[int] = None,
    params: Optional[Mapping[str, Any]] = None,
    transport: Any = None,
    escalation: bool = False,
    **overrides: Any,
):
    """A ready-to-run :class:`~repro.api.config.RunConfig` for family x solver.

    The family's failure plan is attached only to failure-aware solvers
    (currently ``online-broken``) -- other solvers see the bare workload,
    which is what lets one family drive the full solver catalogue.  For
    ``online-broken`` the spec comes from :func:`family_broken_failures`.
    ``transport`` (a :class:`~repro.distsim.transport.TransportSpec`, kind
    name, or JSON mapping) rides on the config; when the family's own
    failure plan already carries one, the explicit argument wins.
    """
    from repro.api.config import RunConfig

    spec = family_spec(name, seed=seed, order=order, preset=preset, **overrides)
    failures = None
    rounds = 0
    if solver == "online-broken":
        failures = family_broken_failures(name, spec.family_params_dict(), seed=seed)
        rounds = (
            recovery_rounds
            if recovery_rounds is not None
            else get_family(name).defaults.get("recovery_rounds", 2)
        )
        if transport is not None and failures is not None and failures.transport is not None:
            failures = failures.without_transport()
    return RunConfig(
        solver=solver,
        scenario=spec,
        capacity=capacity,
        failures=failures,
        transport=transport,
        escalation=escalation,
        recovery_rounds=rounds,
        params=params if params is not None else (),
    )


def family_matrix(
    families: Optional[Sequence[str]] = None,
    solvers: Sequence[str] = ("offline",),
    *,
    seeds: Sequence[int] = (0,),
    capacity: Any = "theorem",
    order: Optional[str] = None,
    preset: Optional[str] = None,
) -> List[Any]:
    """The cross product family x solver x seed as run configs.

    Enumeration order (family-major, then solver, then seed) matches
    :func:`repro.api.engine.config_matrix` and is part of the sweep format.
    ``order=None`` lets each family use its preferred arrival ordering.
    """
    names = list(families) if families is not None else available_families()
    configs = []
    for name in names:
        for solver in solvers:
            for seed in seeds:
                configs.append(
                    family_config(
                        name,
                        solver,
                        seed=seed,
                        capacity=capacity,
                        order=order,
                        preset=preset,
                    )
                )
    return configs


# --------------------------------------------------------------------------- #
# the built-in families
# --------------------------------------------------------------------------- #


def _window(params: Mapping[str, Any]) -> Box:
    return Box.cube((0, 0), int(params["side"]))


def _job_count(demand: DemandMap) -> int:
    return sum(int(math.ceil(v - 1e-12)) for _, v in demand.items())


def _build_hotspot(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return hotspot_demand(
        _window(params),
        int(params["hotspots"]),
        int(params["jobs"]),
        rng,
        hotspot_share=float(params["hotspot_share"]),
        spread=int(params["spread"]),
    )


def _build_bursty(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return random_uniform_demand(_window(params), int(params["jobs"]), rng)


def _build_heavy_tailed(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return heavy_tailed_demand(
        _window(params), int(params["points"]), rng, alpha=float(params["alpha"])
    )


def _build_corners(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return corner_demand(
        _window(params),
        float(params["per_corner"]),
        center_jobs=float(params["center_jobs"]),
    )


def _build_clustered(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return clustered_demand(
        _window(params),
        int(params["clusters"]),
        int(params["jobs"]) // max(1, int(params["clusters"])),
        rng,
        spread=int(params["spread"]),
    )


def _build_uniform(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return random_uniform_demand(_window(params), int(params["jobs"]), rng)


def _build_scale_up(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return grid_demand(int(params["side"]), float(params["per_point"]))


def _regional_outage_failures(
    params: Dict[str, Any], demand: DemandMap, rng: np.random.Generator
):
    """Crash every vehicle vertex inside one randomly placed outage box."""
    from repro.api.config import FailureSpec

    window = _window(params)
    outage_side = int(params["outage_side"])
    span = max(1, int(params["side"]) - outage_side)
    corner = tuple(int(c) for c in rng.integers(0, span, size=window.dim))
    outage = Box.cube(corner, outage_side)
    return FailureSpec(crashed=tuple(sorted(outage.points())))


def _churn_failures(params: Dict[str, Any], demand: DemandMap, rng: np.random.Generator):
    """Vehicles leave at staggered times and rejoin a fixed span later."""
    from repro.api.config import FailureSpec

    jobs = max(1, _job_count(demand))
    count = int(params["churn_vehicles"])
    rejoin_after = max(1.0, float(params["rejoin_fraction"]) * jobs)
    support = demand.support()
    picks = rng.choice(len(support), size=min(count, len(support)), replace=False)
    events = []
    for rank, index in enumerate(sorted(int(i) for i in picks)):
        vertex = support[index]
        leave_at = float(1 + (rank + 1) * jobs // (count + 1))
        events.append(ChurnSpec(time=leave_at, vertex=vertex, action="leave"))
        events.append(ChurnSpec(time=leave_at + rejoin_after, vertex=vertex, action="join"))
    return FailureSpec(churn=tuple(events))


def _partition_failures(params: Dict[str, Any], demand: DemandMap, rng: np.random.Generator):
    """Cut the window in half for the middle third of the job sequence.

    With ``corruption_rate > 0`` the partition rides on a Byzantine
    :class:`~repro.distsim.transport.CorruptingTransport` (seeded from the
    family's failure stream), layering message corruption on top of the
    partition machinery.
    """
    from repro.api.config import FailureSpec
    from repro.distsim.transport import TransportSpec

    jobs = max(3, _job_count(demand))
    boundary = (int(params["side"]) - 1) / 2.0
    window = PartitionSpec(
        start=float(jobs // 3),
        end=float(2 * jobs // 3),
        axis=0,
        boundary=boundary,
    )
    transport = None
    rate = float(params.get("corruption_rate", 0.0))
    if rate > 0.0:
        transport = TransportSpec(
            "corrupting",
            {"rate": rate, "seed": int(rng.integers(0, 2**31)) ^ _TRANSPORT_SALT},
        )
    return FailureSpec(partitions=(window,), transport=transport)


register_family(
    ScenarioFamily(
        name="hotspot",
        description="thin uniform background with a few cells carrying ~85% of the load",
        build=_build_hotspot,
        defaults={"side": 16, "hotspots": 3, "jobs": 240, "hotspot_share": 0.85, "spread": 1},
        small={"side": 8, "hotspots": 2, "jobs": 40},
        tags=("demand", "skewed"),
    )
)

register_family(
    ScenarioFamily(
        name="bursty",
        description="uniform demand whose jobs arrive in concentrated same-position bursts",
        build=_build_bursty,
        defaults={"side": 14, "jobs": 220},
        small={"side": 7, "jobs": 36},
        default_order="bursty",
        tags=("arrivals",),
    )
)

register_family(
    ScenarioFamily(
        name="heavy-tailed",
        description="per-point demands drawn from a Pareto tail (a few points dominate)",
        build=_build_heavy_tailed,
        defaults={"side": 16, "points": 120, "alpha": 1.3},
        small={"side": 8, "points": 24},
        tags=("demand", "skewed"),
    )
)

register_family(
    ScenarioFamily(
        name="adversarial-corners",
        description="all demand at the window corners, maximally far from a central depot",
        build=_build_corners,
        defaults={"side": 24, "per_corner": 60.0, "center_jobs": 20.0},
        small={"side": 10, "per_corner": 12.0, "center_jobs": 4.0},
        tags=("demand", "adversarial"),
    )
)

register_family(
    ScenarioFamily(
        name="regional-outage",
        description="clustered demand with every vehicle in one random region crashed",
        build=_build_clustered,
        defaults={
            "side": 14,
            "clusters": 4,
            "jobs": 200,
            "spread": 2,
            "outage_side": 4,
            "recovery_rounds": 3,
        },
        small={"side": 8, "clusters": 2, "jobs": 36, "outage_side": 3},
        failures=_regional_outage_failures,
        tags=("failures", "correlated"),
    )
)

register_family(
    ScenarioFamily(
        name="churn",
        description="vehicles leave at staggered times and rejoin later (join/leave churn)",
        build=_build_uniform,
        defaults={
            "side": 14,
            "jobs": 200,
            "churn_vehicles": 8,
            "rejoin_fraction": 0.25,
            "recovery_rounds": 3,
        },
        small={"side": 7, "jobs": 36, "churn_vehicles": 3},
        failures=_churn_failures,
        tags=("failures", "churn"),
    )
)

register_family(
    ScenarioFamily(
        name="partition",
        description="the network splits into two halves for the middle third of the run",
        build=_build_uniform,
        defaults={"side": 14, "jobs": 200, "recovery_rounds": 2, "corruption_rate": 0.0},
        small={"side": 8, "jobs": 36},
        failures=_partition_failures,
        tags=("failures", "partition"),
    )
)

register_family(
    ScenarioFamily(
        name="diurnal",
        description="time-of-day sinusoidal load curve laid out along the x-axis",
        build=lambda params, rng: diurnal_demand(
            _window(params),
            int(params["jobs"]),
            rng,
            periods=float(params["periods"]),
            trough=float(params["trough"]),
        ),
        defaults={"side": 16, "jobs": 240, "periods": 1.0, "trough": 0.2},
        small={"side": 8, "jobs": 40},
        # Sequential arrivals sweep the slices in sorted order, so the
        # arrival rate follows the sinusoid as the clock advances.
        default_order="sequential",
        tags=("demand", "temporal"),
    )
)

def _build_mobility(params: Dict[str, Any], rng: np.random.Generator) -> DemandMap:
    return mobility_demand(
        _window(params),
        int(params["walkers"]),
        int(params["steps"]),
        rng,
        step=int(params["step"]),
    )


def _mobility_failures(params: Dict[str, Any], demand: DemandMap, rng: np.random.Generator):
    """Pair the drifting workload with its physical radio model: a transport
    whose delay grows with the lattice distance a message covers."""
    from repro.api.config import FailureSpec
    from repro.distsim.transport import TransportSpec

    transport = TransportSpec(
        "distance-latency",
        {"delay": float(params["link_delay"]), "per_step": float(params["step_delay"])},
    )
    return FailureSpec(transport=transport)


register_family(
    ScenarioFamily(
        name="mobility",
        description="drifting consumers deposit jobs along random-walk trails "
        "(paired with the distance-latency transport)",
        build=_build_mobility,
        defaults={
            "side": 16,
            "walkers": 4,
            "steps": 60,
            "step": 1,
            "link_delay": 0.005,
            "step_delay": 0.002,
            "recovery_rounds": 2,
        },
        small={"side": 8, "walkers": 2, "steps": 18},
        failures=_mobility_failures,
        tags=("demand", "mobility", "transport"),
    )
)

register_family(
    ScenarioFamily(
        name="scale-up",
        description="a regular demand grid sized for fleets of hundreds of vehicles",
        build=_build_scale_up,
        defaults={"side": 12, "per_point": 2.0},
        small={"side": 5, "per_point": 1.0},
        tags=("scale",),
    )
)
