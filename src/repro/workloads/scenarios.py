"""Named scenarios tying workloads to the paper's experiments.

Each :class:`Scenario` bundles a demand map, the worked-example closed form
it should be compared against (when one exists), and a short description.
The benchmark harness iterates :func:`paper_scenarios` so every table/figure
row names the scenario it came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.demand import DemandMap
from repro.core.omega import (
    example_line_bound,
    example_point_bound,
    example_square_bound,
)
from repro.grid.lattice import Box
from repro.workloads.generators import (
    clustered_demand,
    line_demand,
    point_demand,
    random_uniform_demand,
    square_demand,
    zipf_demand,
)

__all__ = ["Scenario", "paper_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """A named workload with an optional closed-form reference bound."""

    name: str
    description: str
    demand: DemandMap
    #: The worked-example bound (W1/W2/W3) when the scenario matches one of
    #: the Section 2.1 examples; ``None`` otherwise.
    reference_bound: Optional[float] = None


def paper_scenarios(
    *,
    square_side: int = 8,
    square_per_point: float = 20.0,
    line_length: int = 30,
    line_per_point: float = 12.0,
    point_total: float = 400.0,
    random_window: int = 16,
    random_jobs: int = 300,
    seed: int = 20080803,
) -> List[Scenario]:
    """The scenario suite used across examples and benchmarks.

    The first three rows are the Section 2.1 worked examples with their
    closed-form reference bounds ``W1``, ``W2``, ``W3``; the rest are the
    randomized sweeps (uniform, Zipf, clustered) that exercise the general
    machinery.  The default parameters are sized for laptop-scale runs.
    """
    rng = np.random.default_rng(seed)
    window = Box.cube((0, 0), random_window)
    scenarios = [
        Scenario(
            name="square",
            description=(
                f"Example 2.1.1: demand {square_per_point:g} on every point of an "
                f"{square_side}x{square_side} square (building monitoring)"
            ),
            demand=square_demand(square_side, square_per_point),
            reference_bound=example_square_bound(square_side, square_per_point),
        ),
        Scenario(
            name="line",
            description=(
                f"Example 2.1.2: demand {line_per_point:g} on every point of a "
                f"line of {line_length} (highway traffic sensing)"
            ),
            demand=line_demand(line_length, line_per_point),
            reference_bound=example_line_bound(line_per_point),
        ),
        Scenario(
            name="point",
            description=(
                f"Example 2.1.3: demand {point_total:g} concentrated at one point "
                "(earthquake epicenter)"
            ),
            demand=point_demand(point_total),
            reference_bound=example_point_bound(point_total),
        ),
        Scenario(
            name="uniform",
            description=(
                f"{random_jobs} unit jobs uniform over a {random_window}x{random_window} window"
            ),
            demand=random_uniform_demand(window, random_jobs, rng),
        ),
        Scenario(
            name="zipf",
            description=(
                f"{random_jobs} unit jobs with Zipf-skewed positions over a "
                f"{random_window}x{random_window} window"
            ),
            demand=zipf_demand(window, random_jobs, rng),
        ),
        Scenario(
            name="clustered",
            description="bursty demand around 4 epicenters (seismic monitoring)",
            demand=clustered_demand(window, 4, random_jobs // 4, rng),
        ),
    ]
    return scenarios
