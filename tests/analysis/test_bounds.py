"""Tests for the assembled bound ladder."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import bounds_report
from repro.core.demand import DemandMap
from repro.core.offline import upper_bound_factor
from repro.workloads.generators import point_demand, square_demand


class TestBoundsReport:
    def test_small_instance_has_all_rungs(self):
        demand = DemandMap({(0, 0): 6.0, (2, 1): 3.0})
        report = bounds_report(demand)
        assert report.omega_star_exhaustive is not None
        assert report.lp_self_radius is not None
        assert report.greedy_capacity is not None

    def test_ladder_ordering_small(self):
        demand = DemandMap({(0, 0): 6.0, (2, 1): 3.0})
        report = bounds_report(demand)
        # omega_c <= omega*_cubes <= omega*_subsets ~= LP value <= upper bounds.
        assert report.omega_c <= report.omega_star_cubes + 1e-9
        assert report.omega_star_cubes <= report.omega_star_exhaustive + 1e-9
        assert report.lp_self_radius == pytest.approx(
            report.omega_star_exhaustive, rel=1e-2
        )
        assert report.lower_bound <= report.best_upper_bound + 1e-6

    def test_large_instance_skips_exponential_rungs(self):
        demand = square_demand(5, 4.0)  # 25 support points > SMALL_SUPPORT
        report = bounds_report(demand, include_greedy=False)
        assert report.omega_star_exhaustive is None
        assert report.lp_self_radius is None
        assert report.greedy_capacity is None

    def test_realized_gap_within_theory_factor(self):
        demand = square_demand(4, 10.0)
        report = bounds_report(demand, include_greedy=False)
        assert 1.0 - 1e-9 <= report.realized_gap <= upper_bound_factor(2) + 1e-9

    def test_greedy_upper_bound_consistent(self):
        demand = point_demand(30.0)
        report = bounds_report(demand)
        assert report.greedy_capacity is not None
        assert report.greedy_capacity >= report.lower_bound - 0.1

    def test_offline_factor_recorded(self):
        report = bounds_report(point_demand(5.0), include_greedy=False)
        assert report.offline_factor == upper_bound_factor(2)
