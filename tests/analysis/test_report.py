"""Tests for the plain-text table formatting."""

from __future__ import annotations

import pytest

from repro.analysis.report import Table, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "value"], [["alpha", 1.0], ["b", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [12345.6], [1.5], [0.0]])
        assert "0.000123" in text
        assert "1.23e+04" in text or "12345" in text or "1.23e+4" in text
        assert "1.5" in text
        assert "0" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestTable:
    def test_add_row_and_render(self):
        table = Table("Example", ["scenario", "omega"])
        table.add_row("square", 2.0)
        table.add_row("line", 1.2)
        rendered = table.render()
        assert rendered.startswith("Example")
        assert "square" in rendered and "line" in rendered

    def test_wrong_cell_count_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_matches_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()
