"""Regression tests: configs differing only in failure fields never collide.

The engine's disk cache is keyed on ``RunConfig.config_hash()``.  The hash
used to drop the ``failures`` payload whenever the spec "looked empty",
and emptiness only consulted the crash/suppression channels -- so two
configs that differed only in the newer FailureSpec fields (partitions,
churn), or in ``None`` vs an all-default spec, canonicalized identically
and shared one cache entry.  These tests pin the fix.
"""

from __future__ import annotations

import itertools

from repro.api import (
    ChurnSpec,
    ExperimentEngine,
    FailureSpec,
    PartitionSpec,
    RunConfig,
    ScenarioSpec,
)

SCENARIO = ScenarioSpec(name="point", order="sequential")


def _config(failures, solver="online-broken") -> RunConfig:
    return RunConfig(solver=solver, scenario=SCENARIO, failures=failures)


def _spec_variants():
    return {
        "none": None,
        "empty": FailureSpec(),
        "crashed": FailureSpec(crashed=((0, 0),)),
        "suppressed": FailureSpec(suppressed=((0, 0),)),
        "partition": FailureSpec(partitions=(PartitionSpec(1.0, 5.0, 0, 0.5),)),
        "partition-later": FailureSpec(partitions=(PartitionSpec(2.0, 5.0, 0, 0.5),)),
        "churn": FailureSpec(churn=(ChurnSpec(1.0, (0, 0), "leave"),)),
        "churn-join": FailureSpec(churn=(ChurnSpec(1.0, (0, 0), "join"),)),
    }


class TestFailureSpecHashing:
    def test_all_failure_variants_hash_distinctly(self):
        hashes = {
            label: _config(spec).config_hash() for label, spec in _spec_variants().items()
        }
        for (label_a, hash_a), (label_b, hash_b) in itertools.combinations(
            hashes.items(), 2
        ):
            assert hash_a != hash_b, f"{label_a} collides with {label_b}"

    def test_none_and_default_spec_hash_differently(self):
        assert _config(None).config_hash() != _config(FailureSpec()).config_hash()

    def test_empty_spec_round_trips_through_json(self):
        config = _config(FailureSpec())
        restored = RunConfig.from_json(config.to_json())
        assert restored == config
        assert restored.failures is not None and restored.failures.is_empty()

    def test_is_empty_covers_every_channel(self):
        assert FailureSpec().is_empty()
        for label, spec in _spec_variants().items():
            if spec is None or label == "empty":
                continue
            assert not spec.is_empty(), label


class TestDiskCacheSeparation:
    def test_partition_and_churn_configs_get_separate_cache_entries(self, tmp_path):
        partition = _config(_spec_variants()["partition"])
        churn = _config(_spec_variants()["churn"])
        engine = ExperimentEngine(cache_dir=tmp_path)
        first = engine.run(partition)
        second = engine.run(churn)
        assert engine.stats.executed == 2
        cached = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert cached == sorted({partition.config_hash(), churn.config_hash()})
        assert first.config_hash != second.config_hash

    def test_fresh_engine_reads_back_the_right_entry(self, tmp_path):
        partition = _config(_spec_variants()["partition"])
        churn = _config(_spec_variants()["churn"])
        writer = ExperimentEngine(cache_dir=tmp_path)
        expected = {
            "partition": writer.run(partition),
            "churn": writer.run(churn),
        }
        reader = ExperimentEngine(cache_dir=tmp_path)
        assert reader.run(partition) == expected["partition"]
        assert reader.run(churn) == expected["churn"]
        assert reader.stats.executed == 0
        assert reader.stats.disk_cache_hits == 2
