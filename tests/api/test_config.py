"""Tests for ScenarioSpec / RunConfig validation, hashing, and JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import ConfigError, FailureSpec, RunConfig, RunResult, ScenarioSpec
from repro.core.demand import DemandMap
from repro.io.serialize import (
    run_config_from_json,
    run_config_to_json,
    run_result_from_json,
    run_result_to_json,
)


@pytest.fixture
def inline_scenario() -> ScenarioSpec:
    demand = DemandMap({(0, 0): 3.0, (2, 1): 5.0})
    return ScenarioSpec.from_demand(demand, name="tiny", order="sequential", seed=4)


@pytest.fixture
def full_config(inline_scenario: ScenarioSpec) -> RunConfig:
    return RunConfig(
        solver="online-broken",
        scenario=inline_scenario,
        capacity=12.5,
        omega=2.0,
        failures=FailureSpec(crashed=((0, 0),), suppressed=((1, 1),)),
        recovery_rounds=2,
        params={"b": 1, "a": [1, 2]},
    )


class TestScenarioSpec:
    def test_named_lookup_materializes_demand(self):
        spec = ScenarioSpec.named("point")
        assert not spec.demand().is_empty()

    def test_named_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown paper scenario"):
            ScenarioSpec.named("nonsense")

    def test_inline_entries_round_trip_demand(self, inline_scenario: ScenarioSpec):
        demand = inline_scenario.demand()
        assert demand[(0, 0)] == 3.0
        assert demand[(2, 1)] == 5.0

    def test_entries_are_normalized_sorted(self):
        spec = ScenarioSpec(name="x", entries=(((2, 1), 5.0), ((0, 0), 3)))
        assert spec.entries == (((0, 0), 3.0), ((2, 1), 5.0))

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigError, match="arrival order"):
            ScenarioSpec(name="x", order="shuffled")

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigError, match="seed"):
            ScenarioSpec(name="x", seed=-1)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigError, match="demand"):
            ScenarioSpec(name="x", entries=(((0, 0), -1.0),))

    def test_string_point_rejected(self):
        # A string would otherwise iterate char-by-char into a bogus point.
        with pytest.raises(ConfigError, match="lattice point"):
            FailureSpec(crashed=("33",))

    def test_string_coordinate_rejected_as_config_error(self):
        with pytest.raises(ConfigError, match="coordinate"):
            ScenarioSpec(name="x", entries=((("a", 0), 1.0),))

    def test_fractional_coordinate_rejected(self):
        with pytest.raises(ConfigError, match="non-integer"):
            FailureSpec(crashed=((3.7, 2.2),))

    def test_integral_float_coordinate_accepted(self):
        assert FailureSpec(crashed=((3.0, 2.0),)).crashed == ((3, 2),)

    def test_named_demand_is_cached_instance(self):
        first = ScenarioSpec(name="point").demand()
        second = ScenarioSpec(name="point", seed=5).demand()
        assert first is second

    def test_jobs_deterministic_per_seed(self):
        demand = DemandMap({(0, 0): 4.0, (1, 0): 2.0})
        spec_a = ScenarioSpec.from_demand(demand, seed=7)
        spec_b = ScenarioSpec.from_demand(demand, seed=7)
        assert spec_a.jobs().positions() == spec_b.jobs().positions()

    def test_json_round_trip(self, inline_scenario: ScenarioSpec):
        payload = json.loads(json.dumps(inline_scenario.to_json()))
        assert ScenarioSpec.from_json(payload) == inline_scenario


class TestRunConfigValidation:
    def test_bad_capacity_string_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            RunConfig(solver="online", scenario=ScenarioSpec(name="point"), capacity="lots")

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            RunConfig(solver="online", scenario=ScenarioSpec(name="point"), capacity=0.0)

    def test_non_positive_omega_rejected(self):
        with pytest.raises(ConfigError, match="omega"):
            RunConfig(solver="online", scenario=ScenarioSpec(name="point"), omega=-2.0)

    def test_negative_recovery_rounds_rejected(self):
        with pytest.raises(ConfigError, match="recovery_rounds"):
            RunConfig(
                solver="online", scenario=ScenarioSpec(name="point"), recovery_rounds=-1
            )

    def test_non_json_param_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            RunConfig(
                solver="online",
                scenario=ScenarioSpec(name="point"),
                params={"bad": object()},
            )

    def test_validate_rejects_unknown_scenario(self):
        config = RunConfig(solver="offline", scenario=ScenarioSpec(name="nonsense"))
        with pytest.raises(ConfigError, match="unknown paper scenario"):
            config.validate()


class TestRunConfigRoundTrip:
    def test_json_round_trip_equality(self, full_config: RunConfig):
        payload = json.loads(json.dumps(full_config.to_json()))
        assert RunConfig.from_json(payload) == full_config

    def test_io_serialize_round_trip(self, full_config: RunConfig):
        payload = json.loads(json.dumps(run_config_to_json(full_config)))
        assert run_config_from_json(payload) == full_config

    def test_round_trip_preserves_hash(self, full_config: RunConfig):
        restored = RunConfig.from_json(full_config.to_json())
        assert restored.config_hash() == full_config.config_hash()

    def test_hash_differs_when_config_differs(self, full_config: RunConfig):
        other = full_config.replace(recovery_rounds=3)
        assert other.config_hash() != full_config.config_hash()

    def test_params_normalized_sorted(self, full_config: RunConfig):
        assert [key for key, _ in full_config.params] == ["a", "b"]
        assert full_config.param("b") == 1

    def test_bad_payload_type_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig.from_json({"type": "something_else"})


class TestRunResultRoundTrip:
    def test_json_round_trip_equality(self):
        result = RunResult(
            solver="offline",
            scenario="tiny",
            omega_star=3.0,
            capacity=9.0,
            feasible=True,
            max_vehicle_energy=9.0,
            total_energy=12.0,
            objective=9.0,
            jobs_total=8,
            jobs_served=8,
            extras={"messages": 4, "ratio": 1.5},
            config_hash="abc",
        )
        payload = json.loads(json.dumps(run_result_to_json(result)))
        assert run_result_from_json(payload) == result

    def test_unbounded_capacity_survives(self):
        result = RunResult(
            solver="transportation",
            scenario="tiny",
            omega_star=0.0,
            capacity=None,
            feasible=True,
            max_vehicle_energy=0.0,
            total_energy=0.0,
            objective=0.0,
            jobs_total=0,
            jobs_served=0,
        )
        restored = RunResult.from_json(json.loads(json.dumps(result.to_json())))
        assert restored.capacity is None
        assert restored == result
