"""Tests for the ExperimentEngine: determinism, caching, summaries."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentEngine,
    RunConfig,
    ScenarioSpec,
    config_matrix,
)
from repro.core.demand import DemandMap


@pytest.fixture
def tiny_scenario() -> ScenarioSpec:
    demand = DemandMap({(0, 0): 4.0, (2, 0): 3.0, (0, 2): 2.0})
    return ScenarioSpec.from_demand(demand, name="tiny", seed=0)


@pytest.fixture
def matrix(tiny_scenario: ScenarioSpec) -> list:
    return config_matrix(
        [tiny_scenario],
        ["offline", "greedy", "tsp", "online"],
        seeds=[0, 1],
    )


class TestDeterminism:
    def test_serial_and_parallel_results_identical(self, matrix):
        serial = ExperimentEngine(workers=1).run_many(matrix)
        parallel = ExperimentEngine(workers=4).run_many(matrix)
        assert serial == parallel

    def test_serial_and_parallel_artifacts_byte_identical(self, matrix):
        serial = ExperimentEngine(workers=1).run_many(matrix)
        parallel = ExperimentEngine(workers=4).run_many(matrix)
        assert ExperimentEngine.results_payload(serial) == ExperimentEngine.results_payload(
            parallel
        )

    def test_results_preserve_config_order(self, matrix):
        results = ExperimentEngine(workers=3).run_many(matrix)
        assert [r.solver for r in results] == [c.solver for c in matrix]
        assert [r.config_hash for r in results] == [c.config_hash() for c in matrix]


class TestCaching:
    def test_memory_cache_hits_on_repeat(self, tiny_scenario):
        engine = ExperimentEngine()
        config = RunConfig(solver="offline", scenario=tiny_scenario)
        first = engine.run(config)
        second = engine.run(config)
        assert first == second
        assert engine.stats.executed == 1
        assert engine.stats.memory_cache_hits == 1

    def test_disk_cache_shared_between_engines(self, tiny_scenario, tmp_path):
        config = RunConfig(solver="greedy", scenario=tiny_scenario)
        first_engine = ExperimentEngine(cache_dir=tmp_path)
        first = first_engine.run(config)
        second_engine = ExperimentEngine(cache_dir=tmp_path)
        second = second_engine.run(config)
        assert first == second
        assert second_engine.stats.executed == 0
        assert second_engine.stats.disk_cache_hits == 1

    def test_cache_artifacts_are_config_hashed_json(self, tiny_scenario, tmp_path):
        config = RunConfig(solver="offline", scenario=tiny_scenario)
        ExperimentEngine(cache_dir=tmp_path).run(config)
        path = tmp_path / f"{config.config_hash()}.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["type"] == "run_result"
        assert payload["config_hash"] == config.config_hash()

    def test_duplicate_configs_in_one_batch_solved_once(self, tiny_scenario):
        engine = ExperimentEngine()
        config = RunConfig(solver="offline", scenario=tiny_scenario)
        results = engine.run_many([config, config, config])
        assert len(results) == 3
        assert results[0] == results[1] == results[2]
        assert engine.stats.executed == 1

    def test_duplicate_configs_deduped_under_workers(self, tiny_scenario):
        engine = ExperimentEngine(workers=4)
        config = RunConfig(solver="greedy", scenario=tiny_scenario)
        other = RunConfig(solver="tsp", scenario=tiny_scenario)
        results = engine.run_many([config, other, config, other])
        assert [r.solver for r in results] == ["greedy", "tsp", "greedy", "tsp"]
        assert engine.stats.executed == 2

    def test_executed_counter_accurate_under_workers(self, matrix):
        engine = ExperimentEngine(workers=4)
        engine.run_many(matrix)
        unique = len({c.config_hash() for c in matrix})
        assert engine.stats.executed == unique

    def test_clear_cache(self, tiny_scenario, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run(RunConfig(solver="offline", scenario=tiny_scenario))
        assert list(tmp_path.glob("*.json"))
        engine.clear_cache()
        assert not list(tmp_path.glob("*.json"))
        engine.run(RunConfig(solver="offline", scenario=tiny_scenario))
        assert engine.stats.executed == 2


class TestProgressAndSummary:
    def test_progress_callback_sees_every_run(self, matrix):
        seen = []
        engine = ExperimentEngine(progress=lambda done, total, result: seen.append((done, total)))
        engine.run_many(matrix)
        assert len(seen) == len(matrix)
        assert seen[-1] == (len(matrix), len(matrix))

    def test_summary_table_has_one_row_per_result(self, matrix):
        results = ExperimentEngine().run_many(matrix)
        table = ExperimentEngine.summary(results)
        rendered = table.render()
        assert len(table.rows) == len(results)
        assert "offline" in rendered and "greedy" in rendered

    def test_engine_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExperimentEngine(workers=0)


class TestMatrix:
    def test_config_matrix_orders_scenario_major(self, tiny_scenario):
        other = ScenarioSpec.from_demand(DemandMap({(5, 5): 1.0}), name="other")
        configs = config_matrix([tiny_scenario, other], ["offline", "tsp"], seeds=[0, 1])
        labels = [(c.scenario.name, c.solver, c.scenario.seed) for c in configs]
        assert labels == [
            ("tiny", "offline", 0),
            ("tiny", "offline", 1),
            ("tiny", "tsp", 0),
            ("tiny", "tsp", 1),
            ("other", "offline", 0),
            ("other", "offline", 1),
            ("other", "tsp", 0),
            ("other", "tsp", 1),
        ]
