"""Worker-count determinism of the engine over the scenario families.

The caching/sweep format promises byte-identical artifacts regardless of
how the batch is executed.  The family workloads stress every new code
path at once -- family-built demand, bursty arrivals, partition/churn
failure specs -- so this is where a nondeterministic seed or an
unserializable field would surface first.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine
from repro.workloads.library import family_matrix

#: A slice of the registry covering demand-only, arrival-order, partition,
#: churn, and scale families (the full matrix lives in the differential
#: suite; process pools make every run here cost a worker round-trip).
FAMILIES = ("hotspot", "bursty", "partition", "churn", "scale-up")
SOLVERS = ("offline", "greedy", "online-broken")


def _configs():
    return family_matrix(FAMILIES, SOLVERS, seeds=(0,), preset="small")


@pytest.fixture(scope="module")
def serial_payload() -> str:
    engine = ExperimentEngine(workers=1)
    return engine.results_payload(engine.run_many(_configs()))


class TestFamilySweepDeterminism:
    def test_four_threads_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4)
        payload = engine.results_payload(engine.run_many(_configs()))
        assert payload == serial_payload

    def test_four_processes_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4, use_processes=True)
        payload = engine.results_payload(engine.run_many(_configs()))
        assert payload == serial_payload

    def test_rerun_in_fresh_engine_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=1)
        payload = engine.results_payload(engine.run_many(_configs()))
        assert payload == serial_payload
