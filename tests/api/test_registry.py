"""Tests for the solver registry."""

from __future__ import annotations

import pytest

from repro.api import (
    BUILTIN_SOLVERS,
    RunConfig,
    ScenarioSpec,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    solver_descriptions,
    solver_entry,
    unregister_solver,
)


class TestCatalogue:
    def test_all_builtin_solvers_registered(self):
        assert set(BUILTIN_SOLVERS) <= set(available_solvers())

    def test_expected_names(self):
        for name in (
            "offline",
            "online",
            "online-broken",
            "online-transfer",
            "greedy",
            "cvrp",
            "tsp",
            "transportation",
        ):
            assert name in available_solvers()

    def test_available_solvers_sorted(self):
        names = available_solvers()
        assert names == sorted(names)

    def test_every_solver_has_a_description(self):
        for name, description in solver_descriptions().items():
            assert description, f"solver {name!r} has no description"

    def test_get_solver_returns_callable(self):
        solver = get_solver("offline")
        assert callable(solver)


class TestLookupErrors:
    def test_unknown_solver_raises(self):
        with pytest.raises(UnknownSolverError) as excinfo:
            get_solver("nonsense")
        message = str(excinfo.value)
        assert "nonsense" in message
        # The error names the valid choices.
        assert "offline" in message

    def test_unknown_solver_entry_raises(self):
        with pytest.raises(UnknownSolverError):
            solver_entry("nope")

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownSolverError):
            unregister_solver("nope")

    def test_config_validate_checks_registry(self):
        config = RunConfig(solver="nonsense", scenario=ScenarioSpec.named("point"))
        with pytest.raises(UnknownSolverError):
            config.validate()


class TestRegistration:
    def test_register_and_unregister(self):
        @register_solver("probe-solver", description="test probe")
        def probe(config):  # pragma: no cover - never called
            raise AssertionError

        try:
            assert "probe-solver" in available_solvers()
            assert solver_entry("probe-solver").description == "test probe"
        finally:
            unregister_solver("probe-solver")
        assert "probe-solver" not in available_solvers()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_solver("offline")
            def shadow(config):  # pragma: no cover
                raise AssertionError

    def test_override_allowed_explicitly(self):
        original = solver_entry("offline")

        @register_solver("offline", override=True, description="shadow")
        def shadow(config):  # pragma: no cover
            raise AssertionError

        try:
            assert get_solver("offline") is shadow
        finally:
            register_solver(
                "offline", override=True, description=original.description
            )(original.solve)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_solver("")
