"""Cross-solver smoke tests: every built-in solver produces a sane RunResult."""

from __future__ import annotations

import pytest

from repro.api import (
    BUILTIN_SOLVERS,
    ConfigError,
    ExperimentEngine,
    FailureSpec,
    RunConfig,
    RunResult,
    ScenarioSpec,
    get_solver,
)
from repro.core.demand import DemandMap
from repro.core.offline import offline_bounds
from repro.core.transfer import TransferAccounting, line_tank_requirement


@pytest.fixture
def tiny_scenario() -> ScenarioSpec:
    demand = DemandMap({(0, 0): 4.0, (2, 0): 3.0, (0, 2): 2.0})
    return ScenarioSpec.from_demand(demand, name="tiny", seed=0)


def _run(solver: str, scenario: ScenarioSpec, **kwargs) -> RunResult:
    return ExperimentEngine().run(RunConfig(solver=solver, scenario=scenario, **kwargs))


@pytest.mark.parametrize(
    "solver", [s for s in BUILTIN_SOLVERS if s not in ("online-broken",)]
)
def test_solver_reports_core_quantities(solver, tiny_scenario):
    result = _run(solver, tiny_scenario)
    assert result.solver == solver
    assert result.scenario == "tiny"
    assert result.omega_star > 0
    assert result.max_vehicle_energy >= 0
    assert result.jobs_total == 9  # 4 + 3 + 2 unit jobs
    # Every result survives the JSON round-trip (the engine cache relies on it).
    assert RunResult.from_json(result.to_json()) == result


def test_offline_matches_offline_bounds(tiny_scenario):
    result = _run("offline", tiny_scenario)
    bounds = offline_bounds(tiny_scenario.demand())
    assert result.omega_star == bounds.omega_star
    assert result.max_vehicle_energy == bounds.constructive_capacity
    assert result.extra("omega_c") == bounds.omega_c


def test_online_feasible_at_theorem_capacity(tiny_scenario):
    result = _run("online", tiny_scenario)
    assert result.feasible
    assert result.jobs_served == result.jobs_total
    assert result.capacity == result.extra("theorem_capacity")


def test_online_broken_requires_failures(tiny_scenario):
    with pytest.raises(ConfigError, match="failures"):
        get_solver("online-broken")(
            RunConfig(solver="online-broken", scenario=tiny_scenario)
        )


def test_online_broken_records_failure_counts(tiny_scenario):
    result = _run(
        "online-broken",
        tiny_scenario,
        failures=FailureSpec(crashed=((5, 5),)),
        recovery_rounds=2,
    )
    assert result.extra("crashed_vehicles") == 1
    # A crash far from the demand support must not break feasibility.
    assert result.feasible


def test_transfer_line_mode_matches_closed_form():
    demand = DemandMap({(x, 0): 2.0 for x in range(6)})
    scenario = ScenarioSpec.from_demand(demand, name="line6")
    result = _run("online-transfer", scenario, params={"accounting": "fixed", "a1": 0.5})
    assert result.extra("mode") == "line-tanks"
    closed_form = line_tank_requirement(
        [2.0] * 6, accounting=TransferAccounting.FIXED, a1=0.5
    )
    assert result.extra("closed_form_requirement") == pytest.approx(closed_form)
    # The executed schedule needs the closed form up to integrality slack.
    assert result.capacity == pytest.approx(closed_form, rel=0.5)


def test_transfer_square_mode_uses_theorem_bound(tiny_scenario):
    result = _run("online-transfer", tiny_scenario)
    assert result.extra("mode") == "square-bound"
    assert result.max_vehicle_energy > 0


def test_greedy_sandwiched_by_omega_star(tiny_scenario):
    result = _run("greedy", tiny_scenario)
    assert result.feasible
    # The empirical upper bound must respect the omega* lower bound.
    assert result.max_vehicle_energy >= result.omega_star - 1e-9


def test_cvrp_heuristic_param(tiny_scenario):
    result = _run("cvrp", tiny_scenario, params={"heuristic": "nearest-neighbor"})
    assert result.extra("heuristic") == "nearest-neighbor"
    assert result.feasible


def test_cvrp_unknown_heuristic_rejected(tiny_scenario):
    with pytest.raises(ConfigError, match="heuristic"):
        get_solver("cvrp")(
            RunConfig(
                solver="cvrp", scenario=tiny_scenario, params={"heuristic": "magic"}
            )
        )


def test_transportation_supply_modes(tiny_scenario):
    center = _run("transportation", tiny_scenario)
    uniform = _run("transportation", tiny_scenario, params={"supply": "uniform"})
    assert center.extra("supply_mode") == "center"
    assert uniform.extra("supply_mode") == "uniform"
    assert center.objective >= 0 and uniform.objective >= 0


def test_empty_demand_short_circuits():
    scenario = ScenarioSpec(name="empty", entries=(), dim=2)
    for solver in BUILTIN_SOLVERS:
        kwargs = {}
        if solver == "online-broken":
            kwargs["failures"] = FailureSpec(crashed=((9, 9),))
        result = _run(solver, scenario, **kwargs)
        assert result.feasible
        assert result.jobs_total == 0
