"""Worker-count determinism of the engine across every transport kind.

The transport layer adds seeded randomness (loss streams, corruption
streams, per-edge jitter) to the message path; all of it must live in the
config, never in ambient state, so a sweep's serialized results stay
byte-identical whether it ran on one thread, four threads, or four
processes.  Process pools additionally force the configs through JSON --
exactly where an unserializable or unstably-hashed transport field would
surface.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, TransportSpec
from repro.distsim.transport import available_transports
from repro.workloads.library import family_config

FAMILY = "hotspot"
SEED = 0

#: One spec per registered kind, with non-default parameters so the params
#: channel is exercised too.
TRANSPORT_SPECS = {
    "reliable": TransportSpec("reliable", {"delay": 0.01}),
    "latency": TransportSpec("latency", {"delay": 0.01, "jitter": 0.05, "seed": 2}),
    "distance-latency": TransportSpec(
        "distance-latency", {"delay": 0.01, "per_step": 0.003}
    ),
    "lossy": TransportSpec("lossy", {"loss": 0.08, "seed": 2}),
    "corrupting": TransportSpec("corrupting", {"rate": 0.08, "seed": 2}),
    # The nested-spec channel: a retransmit wrapper over a lossy inner
    # transport exercises spec-in-spec JSON round-tripping too.
    "retransmit": TransportSpec(
        "retransmit",
        {
            "inner": {"kind": "lossy", "params": {"loss": 0.2, "seed": 2}},
            "retries": 2,
            "timeout": 0.05,
        },
    ),
}


def _configs(spec: TransportSpec):
    online = family_config(FAMILY, "online", seed=SEED, preset="small").replace(
        transport=spec
    )
    broken = family_config(
        FAMILY, "online-broken", seed=SEED, preset="small", transport=spec
    )
    return [online, broken]


def test_every_registered_kind_is_covered():
    assert set(TRANSPORT_SPECS) == set(available_transports())


@pytest.mark.parametrize("kind", sorted(TRANSPORT_SPECS))
class TestTransportWorkerDeterminism:
    def test_threads_and_processes_byte_identical(self, kind):
        spec = TRANSPORT_SPECS[kind]
        configs = _configs(spec)
        serial = ExperimentEngine(workers=1)
        reference = serial.results_payload(serial.run_many(configs))
        threaded = ExperimentEngine(workers=4)
        assert threaded.results_payload(threaded.run_many(configs)) == reference
        forked = ExperimentEngine(workers=4, use_processes=True)
        assert forked.results_payload(forked.run_many(configs)) == reference

    def test_config_hash_round_trips_through_json(self, kind):
        import json

        from repro.api import RunConfig

        for config in _configs(TRANSPORT_SPECS[kind]):
            payload = json.loads(json.dumps(config.to_json()))
            restored = RunConfig.from_json(payload)
            assert restored == config
            assert restored.config_hash() == config.config_hash()
            assert restored.effective_transport() == TRANSPORT_SPECS[kind]
