"""Tests for the single-depot CVRP baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cvrp import (
    CVRPInstance,
    clarke_wright,
    nearest_neighbor_routes,
    sweep_routes,
)
from repro.core.demand import DemandMap
from repro.grid.lattice import manhattan
from repro.workloads.generators import random_uniform_demand
from repro.grid.lattice import Box


@pytest.fixture
def small_instance() -> CVRPInstance:
    demands = {
        (2, 0): 3.0,
        (0, 2): 2.0,
        (-2, 0): 4.0,
        (0, -2): 1.0,
        (3, 3): 2.0,
        (-3, -1): 3.0,
    }
    return CVRPInstance(depot=(0, 0), demands=demands, capacity=6.0)


@pytest.fixture
def random_instance(rng) -> CVRPInstance:
    demand = random_uniform_demand(Box.cube((0, 0), 10), 60, rng)
    return CVRPInstance.from_demand_map(demand, capacity=8.0)


ALL_SOLVERS = [clarke_wright, sweep_routes, nearest_neighbor_routes]


class TestInstance:
    def test_demand_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            CVRPInstance(depot=(0, 0), demands={(1, 0): 10.0}, capacity=5.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            CVRPInstance(depot=(0, 0), demands={(1, 0): -1.0}, capacity=5.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            CVRPInstance(depot=(0, 0), demands={}, capacity=0.0)

    def test_from_demand_map_default_depot(self):
        demand = DemandMap({(0, 0): 2.0, (4, 4): 2.0})
        instance = CVRPInstance.from_demand_map(demand, capacity=5.0)
        assert instance.depot == (2, 2)

    def test_from_demand_map_splits_oversized_demands(self):
        demand = DemandMap({(1, 1): 13.0})
        instance = CVRPInstance.from_demand_map(demand, capacity=5.0)
        # Two dedicated full loads plus a residual customer of 3.
        assert len(instance.full_load_stops) == 2
        assert instance.demands[(1, 1)] == pytest.approx(3.0)

    def test_empty_demand_rejected(self):
        with pytest.raises(ValueError):
            CVRPInstance.from_demand_map(DemandMap({}, dim=2), capacity=5.0)


class TestSolvers:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_solution_is_feasible(self, solver, small_instance):
        solution = solver(small_instance)
        assert solution.is_feasible()

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_solution_feasible_on_random_instance(self, solver, random_instance):
        solution = solver(random_instance)
        assert solution.is_feasible()

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_total_length_at_least_lower_bound(self, solver, small_instance):
        # Every customer must be reached, so the cost is at least twice the
        # distance to the farthest customer (go there and come back).
        solution = solver(small_instance)
        farthest = max(
            manhattan(small_instance.depot, c) for c in small_instance.customers()
        )
        assert solution.total_length() >= 2 * farthest

    def test_clarke_wright_no_worse_than_one_route_per_customer(self, small_instance):
        solution = clarke_wright(small_instance)
        out_and_back = sum(
            2 * manhattan(small_instance.depot, c) for c in small_instance.customers()
        )
        assert solution.total_length() <= out_and_back + 1e-9

    def test_clarke_wright_merges_routes(self, small_instance):
        solution = clarke_wright(small_instance)
        assert len(solution.routes) < len(small_instance.customers())

    def test_sweep_requires_planar(self):
        instance = CVRPInstance(depot=(0, 0, 0), demands={(1, 0, 0): 1.0}, capacity=2.0)
        with pytest.raises(ValueError):
            sweep_routes(instance)

    def test_max_route_energy_reported(self, small_instance):
        solution = clarke_wright(small_instance)
        assert solution.max_route_energy() > 0
        # The min-max objective is at most the total objective.
        assert solution.max_route_energy() <= solution.total_length() + sum(
            small_instance.demands.values()
        )

    def test_route_load_within_capacity(self, random_instance):
        for solver in ALL_SOLVERS:
            solution = solver(random_instance)
            for route in solution.routes:
                assert solution.route_load(route) <= random_instance.capacity + 1e-9
