"""Tests for the greedy nearest-vehicle CMVRP heuristic."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import greedy_nearest_vehicle_plan
from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan
from repro.core.omega import omega_star_cubes
from repro.workloads.generators import point_demand, square_demand


class TestGreedyPlan:
    def test_empty_demand(self):
        plan = greedy_nearest_vehicle_plan(DemandMap({}, dim=2), 5.0)
        assert len(plan) == 0

    def test_zero_capacity_serves_nothing(self):
        plan = greedy_nearest_vehicle_plan(point_demand(5.0), 0.0)
        assert len(plan) == 0

    def test_local_service_when_capacity_suffices(self):
        demand = DemandMap({(0, 0): 3.0})
        plan = greedy_nearest_vehicle_plan(demand, 10.0)
        audit = audit_plan(plan, demand, capacity=10.0)
        assert audit.feasible
        # A single vehicle (the local one) should do all the work.
        assert len(plan) == 1
        assert plan.routes[0].travel_cost == 0.0

    def test_capacity_respected(self):
        demand = point_demand(30.0)
        plan = greedy_nearest_vehicle_plan(demand, 4.0)
        for route in plan:
            assert route.total_energy <= 4.0 + 1e-9

    def test_feasible_when_capacity_generous(self):
        demand = square_demand(3, 5.0)
        capacity = 4 * omega_star_cubes(demand).omega + 10
        plan = greedy_nearest_vehicle_plan(demand, capacity)
        assert audit_plan(plan, demand, capacity=capacity).feasible

    def test_infeasible_when_capacity_below_lower_bound(self):
        demand = point_demand(60.0)
        lower = omega_star_cubes(demand).omega
        plan = greedy_nearest_vehicle_plan(demand, lower * 0.5)
        audit = audit_plan(plan, demand)
        assert not audit.feasible

    def test_each_vehicle_used_once(self):
        demand = square_demand(3, 8.0)
        plan = greedy_nearest_vehicle_plan(demand, 6.0)
        starts = [route.start for route in plan]
        assert len(starts) == len(set(starts))

    def test_search_radius_limits_vehicles(self):
        demand = point_demand(10.0)
        plan = greedy_nearest_vehicle_plan(demand, 5.0, search_radius=1)
        for route in plan:
            assert abs(route.start[0]) + abs(route.start[1]) <= 1
