"""Tests for the classical transportation problem solver."""

from __future__ import annotations

import pytest

from repro.baselines.transportation import transportation_problem


class TestTransportationProblem:
    def test_empty(self):
        result = transportation_problem({}, {})
        assert result.cost == 0.0

    def test_identical_distributions_cost_zero(self):
        supplies = {(0, 0): 3.0, (2, 2): 1.0}
        result = transportation_problem(supplies, supplies)
        assert result.cost == pytest.approx(0.0, abs=1e-9)

    def test_single_source_single_sink(self):
        result = transportation_problem({(0, 0): 5.0}, {(3, 4): 5.0})
        assert result.cost == pytest.approx(5.0 * 7)
        assert result.flows[((0, 0), (3, 4))] == pytest.approx(5.0)

    def test_two_sources_pick_nearest(self):
        supplies = {(0, 0): 1.0, (10, 0): 1.0}
        demands = {(1, 0): 1.0, (9, 0): 1.0}
        result = transportation_problem(supplies, demands)
        assert result.cost == pytest.approx(2.0)
        assert ((0, 0), (1, 0)) in result.flows
        assert ((10, 0), (9, 0)) in result.flows

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            transportation_problem({(0, 0): 2.0}, {(1, 1): 3.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transportation_problem({(0, 0): -1.0}, {(1, 1): -1.0})

    def test_flow_conservation(self):
        supplies = {(0, 0): 4.0, (5, 5): 6.0}
        demands = {(1, 1): 7.0, (4, 4): 3.0}
        result = transportation_problem(supplies, demands)
        outgoing: dict = {}
        incoming: dict = {}
        for (source, sink), amount in result.flows.items():
            outgoing[source] = outgoing.get(source, 0.0) + amount
            incoming[sink] = incoming.get(sink, 0.0) + amount
        for point, value in supplies.items():
            assert outgoing.get(point, 0.0) == pytest.approx(value, abs=1e-6)
        for point, value in demands.items():
            assert incoming.get(point, 0.0) == pytest.approx(value, abs=1e-6)

    def test_cost_is_at_least_mean_distance_lower_bound(self):
        # Moving mass 1 a distance of at least d costs at least d.
        result = transportation_problem({(0, 0): 1.0}, {(6, 0): 1.0})
        assert result.cost >= 6.0 - 1e-9
