"""Tests for the TSP heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tsp import nearest_neighbor_tour, tour_length, two_opt


class TestTourLength:
    def test_empty_and_single(self):
        assert tour_length([]) == 0.0
        assert tour_length([(0, 0)]) == 0.0

    def test_closed_square(self):
        tour = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert tour_length(tour) == 4.0

    def test_open_path(self):
        tour = [(0, 0), (2, 0), (2, 2)]
        assert tour_length(tour, closed=False) == 4.0
        assert tour_length(tour, closed=True) == 8.0


class TestNearestNeighborTour:
    def test_visits_every_point_once(self):
        points = [(0, 0), (3, 1), (1, 4), (5, 5), (2, 2)]
        tour = nearest_neighbor_tour(points)
        assert sorted(tour) == sorted(points)

    def test_empty(self):
        assert nearest_neighbor_tour([]) == []

    def test_start_point_respected(self):
        points = [(0, 0), (5, 5), (2, 2)]
        tour = nearest_neighbor_tour(points, start=(5, 5))
        assert tour[0] == (5, 5)

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            nearest_neighbor_tour([(0, 0)], start=(9, 9))

    def test_deterministic(self):
        points = [(3, 1), (0, 0), (1, 4)]
        assert nearest_neighbor_tour(points) == nearest_neighbor_tour(points)

    def test_follows_greedy_choice_on_line(self):
        points = [(0, 0), (1, 0), (4, 0), (2, 0)]
        tour = nearest_neighbor_tour(points)
        assert tour == [(0, 0), (1, 0), (2, 0), (4, 0)]


class TestTwoOpt:
    def test_never_increases_length(self):
        rng = np.random.default_rng(4)
        points = [tuple(p) for p in rng.integers(0, 20, size=(12, 2))]
        initial = nearest_neighbor_tour(points)
        improved = two_opt(initial)
        assert tour_length(improved) <= tour_length(initial) + 1e-9

    def test_fixes_an_obvious_crossing(self):
        # Visiting corners in the order that crosses the square is longer
        # than the perimeter; 2-opt must recover the perimeter.
        bad = [(0, 0), (3, 3), (3, 0), (0, 3)]
        improved = two_opt(bad)
        assert tour_length(improved) == 12.0

    def test_small_tours_unchanged(self):
        assert two_opt([(0, 0), (1, 1)]) == [(0, 0), (1, 1)]
        assert two_opt([(0, 0)]) == [(0, 0)]

    def test_preserves_point_multiset(self):
        points = [(0, 0), (5, 2), (3, 3), (1, 4), (4, 0)]
        improved = two_opt(points)
        assert sorted(improved) == sorted(points)
