"""Shared fixtures for the CMVRP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandMap
from repro.grid.lattice import Box


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator (fixed seed per test)."""
    return np.random.default_rng(20080803)


@pytest.fixture
def small_square_demand() -> DemandMap:
    """A 3x3 square of demand 4 per point -- small enough for exhaustive checks."""
    return DemandMap.uniform_on_box(Box.cube((0, 0), 3), 4.0)


@pytest.fixture
def tiny_demand() -> DemandMap:
    """A handful of scattered demands used by LP/flow cross-checks."""
    return DemandMap({(0, 0): 3.0, (2, 1): 5.0, (5, 5): 2.0, (1, 4): 1.0})


@pytest.fixture
def line_demand_1d() -> DemandMap:
    """A one-dimensional demand profile."""
    return DemandMap({(x,): 2.0 for x in range(6)})
