"""Tests for the dense-array sliding-window helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import (
    dense_demand_array,
    max_cube_sum,
    max_cube_sums,
    sliding_cube_sums,
)
from repro.grid.lattice import Box


class TestDenseDemandArray:
    def test_basic_layout(self):
        box = Box((1, 1), (2, 3))
        array = dense_demand_array({(1, 1): 2.0, (2, 3): 5.0}, box)
        assert array.shape == (2, 3)
        assert array[0, 0] == 2.0
        assert array[1, 2] == 5.0
        assert array.sum() == 7.0

    def test_outside_point_raises(self):
        with pytest.raises(ValueError):
            dense_demand_array({(9, 9): 1.0}, Box((0, 0), (2, 2)))

    def test_duplicate_entries_accumulate(self):
        box = Box((0,), (3,))
        array = dense_demand_array({(1,): 2.0}, box)
        assert array[1] == 2.0


class TestSlidingCubeSums:
    def _brute_force_max(self, array: np.ndarray, side: int) -> float:
        """Max window sum over all (padded) positions, by brute force."""
        padded = np.pad(array, side - 1) if side > 1 else array
        best = 0.0
        shape = padded.shape
        import itertools

        ranges = [range(0, max(1, s - side + 1)) for s in shape]
        for corner in itertools.product(*ranges):
            slices = tuple(slice(c, c + side) for c in corner)
            best = max(best, float(padded[slices].sum()))
        return best

    def test_side_one_is_identity(self):
        array = np.arange(12, dtype=float).reshape(3, 4)
        sums = sliding_cube_sums(array, 1)
        assert np.allclose(sums, array)

    def test_matches_brute_force_2d(self):
        rng = np.random.default_rng(0)
        array = rng.integers(0, 10, size=(5, 6)).astype(float)
        for side in (1, 2, 3, 4):
            sums = sliding_cube_sums(array, side)
            assert sums.max() == pytest.approx(self._brute_force_max(array, side))

    def test_matches_brute_force_1d(self):
        array = np.array([1.0, 5.0, 2.0, 0.0, 7.0])
        for side in (1, 2, 3, 5):
            sums = sliding_cube_sums(array, side)
            assert sums.max() == pytest.approx(self._brute_force_max(array, side))

    def test_matches_brute_force_3d(self):
        rng = np.random.default_rng(1)
        array = rng.integers(0, 5, size=(3, 3, 3)).astype(float)
        for side in (1, 2, 3):
            sums = sliding_cube_sums(array, side)
            assert sums.max() == pytest.approx(self._brute_force_max(array, side))

    def test_side_larger_than_array_without_pad(self):
        array = np.ones((2, 2))
        sums = sliding_cube_sums(array, 5, pad=False)
        assert sums.shape == (1, 1)
        assert sums[0, 0] == 4.0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            sliding_cube_sums(np.ones((2, 2)), 0)

    def test_total_preserved_when_side_covers_everything(self):
        array = np.arange(9, dtype=float).reshape(3, 3)
        sums = sliding_cube_sums(array, 3)
        assert sums.max() == pytest.approx(array.sum())


class TestMaxCubeSums:
    def test_empty_demand(self):
        assert max_cube_sum({}, 3) == 0.0
        assert max_cube_sums({}, [1, 2]) == {1: 0.0, 2: 0.0}

    def test_single_point(self):
        demand = {(0, 0): 5.0}
        assert max_cube_sum(demand, 1) == 5.0
        assert max_cube_sum(demand, 3) == 5.0

    def test_two_points_merge_when_cube_large_enough(self):
        demand = {(0, 0): 2.0, (2, 0): 3.0}
        assert max_cube_sum(demand, 1) == 3.0
        assert max_cube_sum(demand, 2) == 3.0
        assert max_cube_sum(demand, 3) == 5.0

    def test_monotone_in_side(self):
        demand = {(x, y): float((x + 2 * y) % 4) for x in range(5) for y in range(5)}
        sums = max_cube_sums(demand, range(1, 7))
        values = [sums[s] for s in range(1, 7)]
        assert values == sorted(values)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            max_cube_sums({(0, 0): 1.0}, [0])
