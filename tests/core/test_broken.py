"""Tests for Chapter 4: broken vehicles and the Figure 4.1 instance."""

from __future__ import annotations

import math

import pytest

from repro.core.broken import (
    LongevityMap,
    broken_lower_bound,
    broken_omega_for_region,
    figure41_actual_requirement,
    figure41_instance,
    figure41_lp_lower_bound,
    simulate_single_vehicle_shuttle,
)
from repro.core.demand import DemandMap, JobSequence
from repro.core.omega import omega_for_region


class TestLongevityMap:
    def test_default_value(self):
        longevity = LongevityMap(default=1.0)
        assert longevity[(7, 7)] == 1.0

    def test_overrides(self):
        longevity = LongevityMap({(0, 0): 0.5}, default=1.0)
        assert longevity[(0, 0)] == 0.5
        assert longevity[(1, 1)] == 1.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            LongevityMap({(0, 0): 1.5})
        with pytest.raises(ValueError):
            LongevityMap(default=-0.1)

    def test_set(self):
        longevity = LongevityMap()
        longevity.set((2, 2), 0.25)
        assert longevity[(2, 2)] == 0.25
        with pytest.raises(ValueError):
            longevity.set((0, 0), 2.0)

    def test_overrides_copy(self):
        longevity = LongevityMap({(0, 0): 0.5})
        copy = longevity.overrides()
        copy[(0, 0)] = 0.9
        assert longevity[(0, 0)] == 0.5


class TestBrokenOmega:
    def test_all_healthy_matches_unbroken_omega(self):
        # With every p_i = 1 the generalized equation reduces to (1.1).
        demand = DemandMap({(0, 0): 7.0, (1, 0): 3.0})
        healthy = LongevityMap(default=1.0)
        region = [(0, 0), (1, 0)]
        broken = broken_omega_for_region(demand, healthy, region)
        plain = omega_for_region(demand, region)
        assert broken == pytest.approx(plain, rel=1e-6)

    def test_zero_demand_region(self):
        demand = DemandMap({(0, 0): 4.0})
        assert broken_omega_for_region(demand, LongevityMap(), [(9, 9)]) == 0.0

    def test_empty_region_raises(self):
        demand = DemandMap({(0, 0): 4.0})
        with pytest.raises(ValueError):
            broken_omega_for_region(demand, LongevityMap(), [])

    def test_broken_neighbors_raise_requirement(self):
        demand = DemandMap({(0, 0): 12.0})
        healthy = LongevityMap(default=1.0)
        # Break the whole radius-1 ball except the center.
        crippled = LongevityMap(
            {(1, 0): 0.0, (-1, 0): 0.0, (0, 1): 0.0, (0, -1): 0.0}, default=1.0
        )
        assert broken_omega_for_region(demand, crippled, [(0, 0)]) >= broken_omega_for_region(
            demand, healthy, [(0, 0)]
        )

    def test_all_broken_is_infeasible(self):
        demand = DemandMap({(0, 0): 2.0})
        dead = LongevityMap(default=0.0)
        value = broken_omega_for_region(demand, dead, [(0, 0)], max_radius=8)
        assert math.isinf(value)

    def test_partial_longevity_scales_reach(self):
        # A vehicle with p = 0.5 at distance 2 only activates once omega >= 4.
        demand = DemandMap({(0, 0): 4.0})
        longevity = LongevityMap({(2, 0): 0.5}, default=0.0)
        longevity.set((0, 0), 0.0)
        value = broken_omega_for_region(demand, longevity, [(0, 0)])
        # Only the (2, 0) vehicle can serve: it activates at omega = 4 and
        # must then satisfy omega * 0.5 >= 4, i.e. omega >= 8.
        assert value == pytest.approx(8.0, rel=1e-6)

    def test_lower_bound_exhaustive_vs_points(self):
        demand = DemandMap({(0, 0): 4.0, (3, 0): 4.0})
        longevity = LongevityMap(default=1.0)
        exhaustive = broken_lower_bound(demand, longevity, exhaustive=True)
        coarse = broken_lower_bound(demand, longevity, exhaustive=False)
        assert coarse <= exhaustive + 1e-9

    def test_lower_bound_empty_demand(self):
        assert broken_lower_bound(DemandMap({}, dim=2), LongevityMap()) == 0.0


class TestFigure41:
    def test_instance_shape(self):
        instance = figure41_instance(3, 10)
        assert instance.demand[instance.point_i] == 3.0
        assert instance.demand[instance.point_j] == 3.0
        assert instance.longevity[instance.point_k] == 1.0
        assert instance.longevity[(1, 0)] == 0.0  # inside the broken zone
        assert len(instance.jobs) == 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            figure41_instance(0, 10)
        with pytest.raises(ValueError):
            figure41_instance(3, 5)

    def test_jobs_alternate(self):
        instance = figure41_instance(2, 8)
        positions = instance.jobs.positions()
        assert positions == [(-2, 0), (2, 0), (-2, 0), (2, 0)]

    def test_lp_lower_bound_is_2_r1(self):
        for r1 in (2, 3, 5):
            instance = figure41_instance(r1, 4 * r1)
            assert figure41_lp_lower_bound(instance) == pytest.approx(2 * r1, rel=1e-6)

    def test_actual_requirement_closed_form(self):
        for r1 in (1, 2, 4):
            expected = r1 + (2 * r1 - 1) * 2 * r1 + 2 * r1
            assert figure41_actual_requirement(r1) == expected

    def test_shuttle_simulation_matches_closed_form(self):
        for r1 in (1, 2, 3, 5):
            instance = figure41_instance(r1, 4 * r1)
            simulated = simulate_single_vehicle_shuttle(instance.jobs, instance.point_k)
            assert simulated == pytest.approx(figure41_actual_requirement(r1))

    def test_gap_grows_with_r1(self):
        # The ratio actual / LP bound grows linearly in r1 (Section 4.2).
        ratios = []
        for r1 in (2, 4, 8):
            instance = figure41_instance(r1, 4 * r1)
            ratios.append(
                figure41_actual_requirement(r1) / figure41_lp_lower_bound(instance)
            )
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[-1] > 4


class TestShuttleSimulator:
    def test_empty_jobs(self):
        assert simulate_single_vehicle_shuttle(JobSequence([]), (0, 0)) == 0.0

    def test_single_job(self):
        jobs = JobSequence.from_positions([(3, 0)])
        assert simulate_single_vehicle_shuttle(jobs, (0, 0)) == 4.0  # 3 travel + 1 serve
