"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.demand import DemandMap
from repro.io.serialize import demand_to_json, save_json


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bounds_requires_a_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bounds"])

    def test_scenario_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bounds", "--scenario", "nonsense"])

    def test_online_defaults(self):
        args = build_parser().parse_args(["online", "--scenario", "point"])
        assert args.seed == 0
        # No explicit ordering: paper scenarios fall back to "random",
        # scenario families to their preferred ordering.
        assert args.order is None
        assert args.capacity is None


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("square", "line", "point", "uniform", "zipf", "clustered"):
            assert name in output

    def test_bounds_on_builtin_scenario(self, capsys):
        assert main(["bounds", "--scenario", "point"]) == 0
        output = capsys.readouterr().out
        assert "omega*" in output
        assert "upper bound" in output

    def test_bounds_on_json_demand(self, tmp_path, capsys):
        demand = DemandMap({(0, 0): 6.0, (2, 1): 3.0})
        path = tmp_path / "demand.json"
        save_json(demand_to_json(demand), path)
        assert main(["bounds", "--demand-json", str(path)]) == 0
        output = capsys.readouterr().out
        assert "support size" in output

    def test_online_on_json_demand(self, tmp_path, capsys):
        demand = DemandMap({(0, 0): 8.0})
        path = tmp_path / "demand.json"
        save_json(demand_to_json(demand), path)
        code = main(["online", "--demand-json", str(path), "--order", "sequential"])
        assert code == 0
        output = capsys.readouterr().out
        assert "jobs served / total" in output
        assert "8/8" in output

    def test_online_exit_code_reflects_infeasibility(self, tmp_path, capsys):
        demand = DemandMap({(0, 0): 50.0})
        path = tmp_path / "demand.json"
        save_json(demand_to_json(demand), path)
        code = main(
            [
                "online",
                "--demand-json",
                str(path),
                "--omega",
                "3.0",
                "--capacity",
                "4.0",
            ]
        )
        assert code == 1

    def test_online_with_custom_capacity_and_omega(self, tmp_path, capsys):
        demand = DemandMap({(0, 0): 12.0})
        path = tmp_path / "demand.json"
        save_json(demand_to_json(demand), path)
        code = main(
            [
                "online",
                "--demand-json",
                str(path),
                "--omega",
                "3.0",
                "--capacity",
                "8.0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "replacements" in output


class TestFamilyCommands:
    def test_families_lists_the_registry(self, capsys):
        from repro.workloads.library import available_families

        assert main(["families"]) == 0
        output = capsys.readouterr().out
        for name in available_families():
            assert name in output

    def test_run_on_a_family_scenario(self, capsys):
        code = main(["run", "--scenario", "scale-up", "--solver", "offline"])
        assert code == 0
        assert "scale-up" in capsys.readouterr().out

    def test_run_online_broken_inherits_family_failures(self, capsys):
        # No --crash/--suppress flags: the partition family's own failure
        # plan must be attached instead of erroring out.
        code = main(
            [
                "run",
                "--scenario",
                "partition",
                "--solver",
                "online-broken",
                "--recovery-rounds",
                "2",
            ]
        )
        assert code in (0, 1)  # feasibility depends on the adversary
        output = capsys.readouterr().out
        assert "partition_windows" in output

    def test_sweep_over_families(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(
            [
                "sweep",
                "--scenarios",
                "none",
                "--families",
                "hotspot,scale-up",
                "--preset",
                "small",
                "--solvers",
                "offline,greedy",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "hotspot" in output and "scale-up" in output

    def test_sweep_with_nothing_selected_errors(self, capsys):
        code = main(
            ["sweep", "--scenarios", "none", "--families", "none", "--solvers", "offline"]
        )
        assert code == 2

    def test_bounds_on_a_family_scenario(self, capsys):
        assert main(["bounds", "--scenario", "hotspot"]) == 0
        assert "omega*" in capsys.readouterr().out


class TestTransportFlags:
    def test_run_with_transport(self, capsys):
        code = main(
            [
                "run",
                "--scenario",
                "point",
                "--solver",
                "online",
                "--transport",
                "lossy",
                "--transport-param",
                "loss=0.05",
                "--transport-param",
                "seed=3",
            ]
        )
        assert code in (0, 1)
        output = capsys.readouterr().out
        assert "lossy" in output
        assert "messages_dropped" in output

    def test_transport_param_without_transport_errors(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--scenario",
                    "point",
                    "--solver",
                    "online",
                    "--transport-param",
                    "loss=0.1",
                ]
            )

    def test_transport_rejected_for_non_messaging_solver(self, capsys):
        code = main(
            [
                "run",
                "--scenario",
                "point",
                "--solver",
                "offline",
                "--transport",
                "latency",
            ]
        )
        assert code == 2
        assert "--transport" in capsys.readouterr().err

    def test_sweep_attaches_transport_to_online_solvers_only(self, tmp_path):
        import json

        out = tmp_path / "results.json"
        code = main(
            [
                "sweep",
                "--scenarios",
                "none",
                "--families",
                "hotspot",
                "--preset",
                "small",
                "--solvers",
                "offline,online",
                "--transport",
                "latency",
                "--transport-param",
                "jitter=0.05",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        by_solver = {r["solver"]: r for r in payload["results"]}
        assert by_solver["online"]["extras"]["transport"] == "latency"
        assert "transport" not in by_solver["offline"].get("extras", {})

    def test_sweep_transport_without_messaging_solver_errors(self, capsys):
        code = main(
            [
                "sweep",
                "--scenarios",
                "none",
                "--families",
                "hotspot",
                "--solvers",
                "offline",
                "--transport",
                "lossy",
            ]
        )
        assert code == 2
