"""Tests for demand maps and job sequences."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap, Job, JobSequence
from repro.grid.lattice import Box


class TestDemandMapConstruction:
    def test_basic(self):
        demand = DemandMap({(0, 0): 2.0, (1, 1): 3.0})
        assert demand[(0, 0)] == 2.0
        assert demand[(1, 1)] == 3.0
        assert demand[(5, 5)] == 0.0
        assert demand.dim == 2

    def test_zero_entries_dropped(self):
        demand = DemandMap({(0, 0): 0.0, (1, 1): 2.0})
        assert (0, 0) not in demand
        assert len(demand) == 1

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            DemandMap({(0, 0): -1.0})

    def test_non_finite_demand_raises(self):
        with pytest.raises(ValueError):
            DemandMap({(0, 0): float("inf")})

    def test_mixed_dimensions_raise(self):
        with pytest.raises(ValueError):
            DemandMap({(0, 0): 1.0, (0, 0, 0): 1.0})

    def test_empty_requires_dim(self):
        with pytest.raises(ValueError):
            DemandMap({})
        empty = DemandMap({}, dim=2)
        assert empty.is_empty()
        assert empty.dim == 2

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            DemandMap({(0, 0): 1.0}, dim=3)

    def test_float_coordinates_normalized_to_ints(self):
        demand = DemandMap({(0.0, 2.0): 1.5})  # type: ignore[dict-item]
        assert demand[(0, 2)] == 1.5
        assert demand.support() == [(0, 2)]

    def test_uniform_on_box(self):
        demand = DemandMap.uniform_on_box(Box.cube((0, 0), 2), 5.0)
        assert len(demand) == 4
        assert demand.total() == 20.0

    def test_point_demand(self):
        demand = DemandMap.point_demand((3, 4), 7.0)
        assert demand[(3, 4)] == 7.0
        assert demand.total() == 7.0


class TestDemandMapStatistics:
    def test_total_and_max(self):
        demand = DemandMap({(0, 0): 2.0, (1, 1): 6.0})
        assert demand.total() == 8.0
        assert demand.max_demand() == 6.0

    def test_empty_statistics(self):
        demand = DemandMap({}, dim=2)
        assert demand.total() == 0.0
        assert demand.max_demand() == 0.0

    def test_average_over_window_counts_zero_vertices(self):
        demand = DemandMap({(0, 0): 8.0})
        window = Box.cube((0, 0), 4)
        assert demand.average_demand_over(window) == 0.5

    def test_restricted_to(self):
        demand = DemandMap({(0, 0): 1.0, (10, 10): 2.0})
        restricted = demand.restricted_to(Box.cube((0, 0), 2))
        assert len(restricted) == 1
        assert restricted.total() == 1.0

    def test_total_over(self):
        demand = DemandMap({(0, 0): 1.0, (1, 0): 2.0, (2, 0): 4.0})
        assert demand.total_over([(0, 0), (2, 0)]) == 5.0

    def test_bounding_box(self):
        demand = DemandMap({(0, 3): 1.0, (2, 1): 1.0})
        assert demand.bounding_box() == Box((0, 1), (2, 3))

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            DemandMap({}, dim=2).bounding_box()

    def test_scaled(self):
        demand = DemandMap({(0, 0): 2.0}).scaled(3.0)
        assert demand[(0, 0)] == 6.0
        with pytest.raises(ValueError):
            DemandMap({(0, 0): 2.0}).scaled(-1.0)

    def test_merged_with(self):
        a = DemandMap({(0, 0): 1.0})
        b = DemandMap({(0, 0): 2.0, (1, 1): 3.0})
        merged = a.merged_with(b)
        assert merged[(0, 0)] == 3.0
        assert merged.total() == 6.0

    def test_merged_dimension_mismatch(self):
        with pytest.raises(ValueError):
            DemandMap({(0, 0): 1.0}).merged_with(DemandMap({(0, 0, 0): 1.0}))

    def test_equality_and_repr(self):
        a = DemandMap({(0, 0): 1.0})
        b = DemandMap({(0, 0): 1.0})
        assert a == b
        assert "DemandMap" in repr(a)

    def test_support_sorted(self):
        demand = DemandMap({(2, 0): 1.0, (0, 0): 1.0})
        assert demand.support() == [(0, 0), (2, 0)]


class TestJob:
    def test_position_normalized_to_ints(self):
        job = Job(time=1.0, position=(2.0, 3.0))  # type: ignore[arg-type]
        assert job.position == (2, 3)

    def test_non_positive_energy_raises(self):
        with pytest.raises(ValueError):
            Job(time=1.0, position=(0, 0), energy=0.0)

    def test_non_finite_time_raises(self):
        with pytest.raises(ValueError):
            Job(time=float("nan"), position=(0, 0))

    def test_ordering_by_time(self):
        early = Job(time=1.0, position=(5, 5))
        late = Job(time=2.0, position=(0, 0))
        assert early < late


class TestJobSequence:
    def test_from_positions(self):
        seq = JobSequence.from_positions([(0, 0), (1, 1), (0, 0)])
        assert len(seq) == 3
        assert seq[0].time == 1.0
        assert seq[2].position == (0, 0)

    def test_strictly_increasing_times_enforced(self):
        with pytest.raises(ValueError):
            JobSequence([Job(time=1.0, position=(0, 0)), Job(time=1.0, position=(1, 1))])

    def test_sorts_by_time(self):
        seq = JobSequence([Job(time=2.0, position=(1, 1)), Job(time=1.0, position=(0, 0))])
        assert seq[0].position == (0, 0)

    def test_demand_map_collapses_jobs(self):
        seq = JobSequence.from_positions([(0, 0), (0, 0), (1, 1)])
        demand = seq.demand_map()
        assert demand[(0, 0)] == 2.0
        assert demand[(1, 1)] == 1.0

    def test_empty_sequence(self):
        seq = JobSequence([])
        assert seq.is_empty()
        assert len(seq) == 0
        with pytest.raises(ValueError):
            _ = seq.dim

    def test_total_energy(self):
        seq = JobSequence.from_positions([(0, 0)] * 5)
        assert seq.total_energy() == 5.0

    def test_prefix(self):
        seq = JobSequence.from_positions([(0, 0), (1, 1), (2, 2)])
        assert len(seq.prefix(2)) == 2
        with pytest.raises(ValueError):
            seq.prefix(-1)

    def test_positions_in_arrival_order(self):
        seq = JobSequence.from_positions([(1, 1), (0, 0)])
        assert seq.positions() == [(1, 1), (0, 0)]
