"""Tests for plan audits and the minimal-feasible-capacity search."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import greedy_nearest_vehicle_plan
from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan, minimal_feasible_capacity
from repro.core.omega import omega_star_cubes
from repro.core.plan import ServicePlan, VehicleRoute, build_cube_plan
from repro.workloads.generators import point_demand, square_demand


def _plan_from_routes(*routes: VehicleRoute) -> ServicePlan:
    plan = ServicePlan(dim=2)
    for route in routes:
        plan.add(route)
    return plan


class TestAuditPlan:
    def test_feasible_exact_coverage(self):
        demand = DemandMap({(0, 0): 2.0})
        plan = _plan_from_routes(VehicleRoute(start=(0, 0), stops=(((0, 0), 2.0),)))
        audit = audit_plan(plan, demand, capacity=2.0)
        assert audit.feasible
        assert audit.unserved_demand == 0.0
        assert audit.max_vehicle_energy == 2.0

    def test_undercoverage_detected(self):
        demand = DemandMap({(0, 0): 5.0})
        plan = _plan_from_routes(VehicleRoute(start=(0, 0), stops=(((0, 0), 3.0),)))
        audit = audit_plan(plan, demand)
        assert not audit.feasible
        assert audit.unserved_demand == pytest.approx(2.0)
        assert any("demand at" in v for v in audit.violations)

    def test_capacity_violation_detected(self):
        demand = DemandMap({(0, 0): 5.0})
        plan = _plan_from_routes(VehicleRoute(start=(1, 0), stops=(((0, 0), 5.0),)))
        audit = audit_plan(plan, demand, capacity=5.5)
        assert not audit.feasible  # needs 6 energy (1 travel + 5 service)
        assert any("capacity" in v for v in audit.violations)

    def test_duplicate_vehicle_detected(self):
        demand = DemandMap({(0, 0): 2.0})
        plan = ServicePlan(dim=2)
        plan.add(VehicleRoute(start=(0, 0), stops=(((0, 0), 1.0),)))
        plan.add(VehicleRoute(start=(0, 0), stops=(((0, 0), 1.0),)))
        audit = audit_plan(plan, demand)
        assert not audit.feasible
        assert any("is used by" in v for v in audit.violations)

    def test_overdelivery_flagged_but_feasible(self):
        demand = DemandMap({(0, 0): 1.0})
        plan = _plan_from_routes(VehicleRoute(start=(0, 0), stops=(((0, 0), 3.0),)))
        audit = audit_plan(plan, demand)
        assert audit.feasible
        assert any("exceeds demand" in v for v in audit.violations)

    def test_no_capacity_check_when_capacity_none(self):
        demand = DemandMap({(0, 0): 100.0})
        plan = _plan_from_routes(VehicleRoute(start=(0, 0), stops=(((0, 0), 100.0),)))
        audit = audit_plan(plan, demand, capacity=None)
        assert audit.feasible

    def test_summary_mentions_status(self):
        demand = DemandMap({(0, 0): 1.0})
        plan = _plan_from_routes(VehicleRoute(start=(0, 0), stops=(((0, 0), 1.0),)))
        assert "FEASIBLE" in audit_plan(plan, demand, capacity=2.0).summary()

    def test_empty_plan_on_empty_demand(self):
        audit = audit_plan(ServicePlan(dim=2), DemandMap({}, dim=2), capacity=1.0)
        assert audit.feasible


class TestMinimalFeasibleCapacity:
    def test_empty_demand(self):
        capacity, plan = minimal_feasible_capacity(
            DemandMap({}, dim=2), lambda c: ServicePlan(dim=2)
        )
        assert capacity == 0.0
        assert len(plan) == 0

    def test_greedy_builder_point_demand(self):
        demand = point_demand(20.0)
        capacity, plan = minimal_feasible_capacity(
            demand,
            lambda c: greedy_nearest_vehicle_plan(demand, c),
            tolerance=0.05,
        )
        audit = audit_plan(plan, demand, capacity=capacity)
        assert audit.feasible
        # Must be at least the combinatorial lower bound.
        assert capacity >= omega_star_cubes(demand).omega - 0.05

    def test_greedy_builder_square_demand(self):
        demand = square_demand(3, 6.0)
        capacity, plan = minimal_feasible_capacity(
            demand,
            lambda c: greedy_nearest_vehicle_plan(demand, c),
            tolerance=0.05,
        )
        assert audit_plan(plan, demand, capacity=capacity).feasible
        lower = omega_star_cubes(demand).omega
        assert capacity >= lower - 0.05

    def test_cube_plan_builder(self):
        demand = square_demand(4, 8.0)
        omega = omega_star_cubes(demand).omega

        def builder(capacity: float):
            # Lemma 2.2.5 construction with the service cap scaled to the
            # probed capacity (travel within the cube reserved).
            side = max(1, int(omega))
            travel = demand.dim * side
            cap = (capacity - travel) / 2
            if cap <= 0:
                return None
            return build_cube_plan(demand, omega=omega, service_cap=cap)

        capacity, plan = minimal_feasible_capacity(demand, builder, tolerance=0.05)
        assert audit_plan(plan, demand, capacity=capacity).feasible
        assert capacity >= omega - 0.05

    def test_raises_when_builder_never_succeeds(self):
        demand = point_demand(5.0)
        with pytest.raises(RuntimeError):
            minimal_feasible_capacity(
                demand, lambda c: None, max_doublings=3
            )
