"""Tests for the max-flow feasibility oracles."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.flows import (
    min_fixed_radius_capacity,
    min_self_radius_capacity,
    transport_feasible,
)
from repro.core.lp import supply_radius_lp
from repro.core.omega import omega_star_exhaustive


class TestTransportFeasible:
    def test_empty_demand_trivially_feasible(self):
        result = transport_feasible(DemandMap({}, dim=2), {}, 1)
        assert result.feasible
        assert result.shortfall == 0.0

    def test_local_supply_exactly_meets_demand(self):
        demand = DemandMap({(0, 0): 3.0})
        result = transport_feasible(demand, {(0, 0): 3.0}, 0)
        assert result.feasible

    def test_insufficient_supply(self):
        demand = DemandMap({(0, 0): 3.0})
        result = transport_feasible(demand, {(0, 0): 2.0}, 0)
        assert not result.feasible
        assert result.shortfall == pytest.approx(1.0, abs=1e-5)

    def test_supply_out_of_range(self):
        demand = DemandMap({(0, 0): 1.0})
        result = transport_feasible(demand, {(5, 5): 10.0}, 2)
        assert not result.feasible

    def test_neighboring_supply_within_radius(self):
        demand = DemandMap({(0, 0): 4.0})
        supplies = {(1, 0): 2.0, (0, 1): 2.0}
        result = transport_feasible(demand, supplies, 1)
        assert result.feasible

    def test_flows_returned_and_consistent(self):
        demand = DemandMap({(0, 0): 4.0})
        supplies = {(1, 0): 2.0, (0, 1): 3.0}
        result = transport_feasible(demand, supplies, 1, return_flows=True)
        assert result.feasible
        total = sum(result.flows.values())
        assert total == pytest.approx(4.0, rel=1e-5)
        for (vehicle, _target), amount in result.flows.items():
            assert amount <= supplies[vehicle] + 1e-6

    def test_per_vehicle_radius_mapping(self):
        # Chapter 4 style: one vehicle may move far, the other not at all.
        demand = DemandMap({(0, 0): 2.0})
        supplies = {(3, 0): 2.0, (1, 0): 2.0}
        radii = {(3, 0): 5.0, (1, 0): 0.0}
        result = transport_feasible(demand, supplies, radii)
        assert result.feasible
        radii_blocked = {(3, 0): 1.0, (1, 0): 0.0}
        blocked = transport_feasible(demand, supplies, radii_blocked)
        assert not blocked.feasible

    def test_zero_supply_vehicles_ignored(self):
        demand = DemandMap({(0, 0): 1.0})
        result = transport_feasible(demand, {(0, 0): 0.0, (1, 0): 1.0}, 1)
        assert result.feasible


class TestMinimalCapacities:
    def test_fixed_radius_matches_lp(self, tiny_demand):
        for radius in (0, 1, 2):
            flow_value = min_fixed_radius_capacity(tiny_demand, radius, tolerance=1e-4)
            lp_value = supply_radius_lp(tiny_demand, radius).value
            assert flow_value == pytest.approx(lp_value, rel=1e-2, abs=1e-3)

    def test_fixed_radius_decreasing_in_radius(self):
        demand = DemandMap({(0, 0): 20.0})
        values = [min_fixed_radius_capacity(demand, r, tolerance=1e-3) for r in (0, 1, 2)]
        assert values[0] >= values[1] >= values[2]

    def test_self_radius_matches_omega_star(self):
        # Lemma 2.2.3 cross-check through a completely different code path.
        demand = DemandMap({(0, 0): 4.0, (1, 0): 2.0, (0, 1): 1.0})
        flow_value = min_self_radius_capacity(demand, tolerance=1e-4)
        combinatorial = omega_star_exhaustive(demand).omega
        assert flow_value == pytest.approx(combinatorial, rel=1e-2)

    def test_self_radius_point_demand(self):
        demand = DemandMap({(0, 0): 5.0})
        assert min_self_radius_capacity(demand, tolerance=1e-4) == pytest.approx(1.0, rel=1e-2)

    def test_empty_demand(self):
        empty = DemandMap({}, dim=2)
        assert min_fixed_radius_capacity(empty, 3) == 0.0
        assert min_self_radius_capacity(empty) == 0.0
