"""Tests for the Chapter 2 linear programs, their duals, and Lemma 2.2.1."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.lp import (
    alpha_objective,
    alpha_to_h,
    capacity_lp_value,
    dual_alpha_lp,
    h_mass,
    h_objective,
    lp_value_by_subsets,
    supply_radius_lp,
)
from repro.core.omega import omega_star_exhaustive


class TestSupplyRadiusLP:
    def test_empty_demand(self):
        solution = supply_radius_lp(DemandMap({}, dim=2), 1)
        assert solution.value == 0.0
        assert solution.flows == {}

    def test_single_point_radius_one(self):
        # One unit of demand can be split over the 5 vehicles of the ball.
        demand = DemandMap({(0, 0): 5.0})
        solution = supply_radius_lp(demand, 1)
        assert solution.value == pytest.approx(1.0, abs=1e-6)

    def test_radius_zero_forces_local_service(self):
        demand = DemandMap({(0, 0): 7.0, (3, 3): 2.0})
        solution = supply_radius_lp(demand, 0)
        assert solution.value == pytest.approx(7.0, abs=1e-6)

    def test_value_decreases_with_radius(self):
        demand = DemandMap({(0, 0): 12.0, (1, 0): 4.0})
        values = [supply_radius_lp(demand, r).value for r in (0, 1, 2, 3)]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-9

    def test_flows_cover_demand(self):
        # The LP only lower-bounds deliveries (over-delivery is free), so the
        # check is coverage, not equality.
        demand = DemandMap({(0, 0): 6.0, (2, 1): 3.0})
        solution = supply_radius_lp(demand, 2)
        delivered: dict = {}
        for (vehicle, target), amount in solution.flows.items():
            delivered[target] = delivered.get(target, 0.0) + amount
        for point, value in demand.items():
            assert delivered.get(point, 0.0) >= value - 1e-5

    def test_flows_respect_supply(self):
        demand = DemandMap({(0, 0): 6.0, (2, 1): 3.0})
        solution = supply_radius_lp(demand, 2)
        shipped: dict = {}
        for (vehicle, target), amount in solution.flows.items():
            shipped[vehicle] = shipped.get(vehicle, 0.0) + amount
        for vehicle, amount in shipped.items():
            assert amount <= solution.value + 1e-6

    def test_matches_lemma_2_2_2_closed_form(self, tiny_demand):
        for radius in (0, 1, 2):
            lp_value = supply_radius_lp(tiny_demand, radius).value
            subset_value, _ = lp_value_by_subsets(tiny_demand, radius)
            assert lp_value == pytest.approx(subset_value, rel=1e-5)


class TestDualAlphaLP:
    def test_strong_duality(self, tiny_demand):
        for radius in (0, 1, 2):
            primal = supply_radius_lp(tiny_demand, radius).value
            dual = dual_alpha_lp(tiny_demand, radius).value
            assert primal == pytest.approx(dual, rel=1e-5)

    def test_alpha_sums_to_at_most_one(self, tiny_demand):
        dual = dual_alpha_lp(tiny_demand, 1)
        assert sum(dual.alpha.values()) <= 1.0 + 1e-6

    def test_empty_demand(self):
        dual = dual_alpha_lp(DemandMap({}, dim=2), 1)
        assert dual.value == 0.0


class TestLemma221Decomposition:
    def test_single_plateau(self):
        alpha = {(0, 0): 0.5, (1, 0): 0.5}
        h = alpha_to_h(alpha)
        # One connected component at a single level.
        assert len(h) == 1
        subset, weight = next(iter(h.items()))
        assert subset == frozenset({(0, 0), (1, 0)})
        assert weight == pytest.approx(0.5)

    def test_nested_levels(self):
        alpha = {(0,): 0.2, (1,): 0.6, (2,): 0.2}
        h = alpha_to_h(alpha)
        assert h[frozenset({(0,), (1,), (2,)})] == pytest.approx(0.2)
        assert h[frozenset({(1,)})] == pytest.approx(0.4)

    def test_disconnected_components(self):
        alpha = {(0, 0): 0.3, (5, 5): 0.3}
        h = alpha_to_h(alpha)
        assert len(h) == 2
        assert all(weight == pytest.approx(0.3) for weight in h.values())

    def test_mass_identity(self):
        # sum_T h(T) |T| == sum_i alpha_i, as in the proof of Lemma 2.2.1.
        alpha = {(0, 0): 0.1, (1, 0): 0.25, (1, 1): 0.25, (4, 4): 0.4}
        h = alpha_to_h(alpha)
        assert h_mass(h) == pytest.approx(sum(alpha.values()))

    def test_objective_equality_when_balls_inside_support(self):
        # Lemma 2.2.1: the two objectives agree.  Build alpha positive on a
        # region large enough to contain the radius-1 balls of the demand.
        alpha = {
            (x, y): 0.05 + 0.01 * (4 - abs(x - 2) - abs(y - 2))
            for x in range(5)
            for y in range(5)
        }
        demand = DemandMap({(2, 2): 3.0, (1, 2): 2.0})
        h = alpha_to_h(alpha)
        assert h_objective(demand, 1, h) == pytest.approx(
            alpha_objective(demand, 1, alpha), rel=1e-9
        )

    def test_objective_upper_bound_in_general(self):
        # When a ball leaves the support of alpha the min is 0 and the h-sum
        # is 0 too; the h objective never exceeds the alpha objective.
        alpha = {(0, 0): 0.7, (1, 0): 0.3}
        demand = DemandMap({(0, 0): 2.0, (5, 5): 4.0})
        h = alpha_to_h(alpha)
        assert h_objective(demand, 1, h) <= alpha_objective(demand, 1, alpha) + 1e-12

    def test_empty_alpha(self):
        assert alpha_to_h({}) == {}
        assert alpha_to_h({(0, 0): 0.0}) == {}


class TestCapacityLP:
    def test_empty_demand(self):
        assert capacity_lp_value(DemandMap({}, dim=2)) == 0.0

    def test_matches_omega_star_exhaustive(self):
        # Lemma 2.2.3: the value of program (2.8) equals max_T omega_T.
        demand = DemandMap({(0, 0): 4.0, (1, 0): 2.0, (0, 1): 1.0})
        lp = capacity_lp_value(demand, tolerance=1e-4)
        combinatorial = omega_star_exhaustive(demand).omega
        assert lp == pytest.approx(combinatorial, rel=1e-2)

    def test_matches_omega_star_point(self):
        demand = DemandMap({(0, 0): 9.0})
        lp = capacity_lp_value(demand, tolerance=1e-4)
        combinatorial = omega_star_exhaustive(demand).omega
        assert lp == pytest.approx(combinatorial, rel=1e-2)
