"""Tests for Algorithm 1 and the offline characterization (Theorem 1.4.1)."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.offline import (
    algorithm1,
    offline_bounds,
    online_upper_bound_factor,
    upper_bound_factor,
)
from repro.core.omega import omega_star_cubes
from repro.grid.lattice import Box
from repro.workloads.generators import point_demand, random_uniform_demand, square_demand


class TestFactors:
    def test_offline_factor_values(self):
        assert upper_bound_factor(1) == 2 * 3 + 1
        assert upper_bound_factor(2) == 2 * 9 + 2
        assert upper_bound_factor(3) == 2 * 27 + 3

    def test_online_factor_values(self):
        assert online_upper_bound_factor(2) == 4 * 9 + 2

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            upper_bound_factor(0)
        with pytest.raises(ValueError):
            online_upper_bound_factor(0)


class TestAlgorithm1:
    def test_requires_power_of_two_window(self):
        demand = DemandMap({(0, 0): 1.0})
        with pytest.raises(ValueError):
            algorithm1(demand, Box.cube((0, 0), 6))

    def test_requires_cubic_window(self):
        demand = DemandMap({(0, 0): 1.0})
        with pytest.raises(ValueError):
            algorithm1(demand, Box((0, 0), (7, 3)))

    def test_demand_outside_window_rejected(self):
        demand = DemandMap({(20, 20): 1.0})
        with pytest.raises(ValueError):
            algorithm1(demand, Box.cube((0, 0), 8))

    def test_sparse_early_exit(self):
        # Every point has demand at most 1: vehicles cannot even move (step 3-4).
        demand = DemandMap({(0, 0): 1.0, (3, 3): 0.5})
        result = algorithm1(demand, Box.cube((0, 0), 8))
        assert result.early_exit == "sparse"
        assert result.estimate == 1.0

    def test_dense_early_exit(self):
        # Average demand at least n: the whole window behaves as one cube.
        window = Box.cube((0, 0), 4)
        demand = DemandMap({p: 10.0 for p in window.points()})
        result = algorithm1(demand, window)
        assert result.early_exit == "dense"
        assert result.estimate <= demand.max_demand()

    def test_normal_exit_returns_constant_times_cube_side(self):
        window = Box.cube((0, 0), 16)
        demand = DemandMap({(3, 3): 30.0, (10, 10): 25.0})
        result = algorithm1(demand, window)
        assert result.early_exit is None
        factor = upper_bound_factor(2)
        assert result.estimate == pytest.approx(factor * result.terminal_cube_side)

    def test_estimate_is_upper_bound_on_omega_star(self):
        window = Box.cube((0, 0), 16)
        rng_demand = DemandMap({(x, y): float((x * y) % 7) for x in range(16) for y in range(16)})
        result = algorithm1(rng_demand, window)
        assert result.estimate >= omega_star_cubes(rng_demand).omega - 1e-9

    def test_estimate_within_approximation_factor(self, rng):
        window = Box.cube((0, 0), 32)
        demand = random_uniform_demand(window, 600, rng)
        result = algorithm1(demand, window)
        omega_star = omega_star_cubes(demand).omega
        factor = upper_bound_factor(2)
        # Algorithm 1 is a 2 * (2*3^l + l)-approximation of W_off and W_off >= omega*.
        assert result.estimate >= omega_star - 1e-9
        assert result.estimate <= 2 * factor * max(omega_star, 1.0) + factor * 2

    def test_monotone_under_demand_scaling(self):
        window = Box.cube((0, 0), 16)
        base = DemandMap({(3, 3): 10.0, (12, 4): 6.0, (8, 8): 4.0})
        low = algorithm1(base, window).estimate
        high = algorithm1(base.scaled(8.0), window).estimate
        assert high >= low

    def test_one_dimensional_window(self):
        window = Box((0,), (15,))
        demand = DemandMap({(3,): 12.0, (9,): 5.0})
        result = algorithm1(demand, window)
        assert result.estimate > 0


class TestOfflineBounds:
    def test_empty_demand(self):
        bounds = offline_bounds(DemandMap({}, dim=2))
        assert bounds.omega_star == 0.0
        assert bounds.constructive_capacity == 0.0

    @pytest.mark.parametrize(
        "demand",
        [square_demand(4, 6.0), point_demand(120.0), square_demand(6, 25.0)],
        ids=["square4", "point", "square6"],
    )
    def test_sandwich_ordering(self, demand):
        bounds = offline_bounds(demand)
        # omega_c <= omega* <= constructive <= (2*3^l + l) * omega*.
        assert bounds.omega_c <= bounds.omega_star + 1e-9
        assert bounds.omega_star <= bounds.constructive_capacity + 1e-9
        assert bounds.constructive_capacity <= bounds.upper_bound + 1e-9

    def test_sandwich_ratio_bounded_by_factor(self):
        demand = square_demand(5, 14.0)
        bounds = offline_bounds(demand)
        assert bounds.sandwich_ratio <= upper_bound_factor(2) + 1e-9

    def test_algorithm1_estimate_included_when_window_given(self):
        demand = DemandMap({(2, 2): 20.0, (5, 5): 8.0})
        bounds = offline_bounds(demand, window=Box.cube((0, 0), 8))
        assert bounds.algorithm1_estimate is not None
        assert bounds.algorithm1_estimate >= bounds.omega_star - 1e-9

    def test_no_window_no_algorithm1(self):
        bounds = offline_bounds(point_demand(10.0))
        assert bounds.algorithm1_estimate is None
