"""Tests for the omega_T solvers (equation (1.1) and its cube restrictions)."""

from __future__ import annotations

import math

import pytest

from repro.core.demand import DemandMap
from repro.core.omega import (
    example_line_bound,
    example_point_bound,
    example_square_bound,
    omega_c,
    omega_for_box,
    omega_for_region,
    omega_star_cubes,
    omega_star_exhaustive,
    solve_threshold,
)
from repro.grid.lattice import Box, l1_ball_size
from repro.grid.regions import Region


class TestSolveThreshold:
    def test_zero_demand(self):
        assert solve_threshold(0.0, lambda k: 1) == 0.0

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            solve_threshold(-1.0, lambda k: 1)

    def test_constant_neighborhood(self):
        # f(k) = 1 for all k: the equation is w * 1 = D.
        assert solve_threshold(7.0, lambda k: 1) == pytest.approx(7.0)

    def test_point_neighborhood_2d(self):
        # f(k) = |B_2(k)|: for D = 5, w = 1 works exactly (1 * 5 = 5).
        value = solve_threshold(5.0, lambda k: l1_ball_size(2, k))
        assert value == pytest.approx(1.0)

    def test_solution_satisfies_threshold(self):
        f = lambda k: l1_ball_size(2, k)
        for demand in (0.5, 1.0, 3.7, 20.0, 333.0):
            w = solve_threshold(demand, f)
            assert w * f(int(math.floor(w))) >= demand - 1e-9

    def test_solution_is_minimal(self):
        f = lambda k: l1_ball_size(2, k)
        for demand in (0.5, 3.7, 20.0, 333.0):
            w = solve_threshold(demand, f)
            slightly_less = w * (1 - 1e-6)
            assert slightly_less * f(int(math.floor(slightly_less))) < demand + 1e-6

    def test_monotone_in_demand(self):
        f = lambda k: l1_ball_size(2, k)
        values = [solve_threshold(d, f) for d in (1, 5, 20, 100, 500)]
        assert values == sorted(values)


class TestOmegaForRegion:
    def test_empty_region_raises(self):
        demand = DemandMap({(0, 0): 1.0})
        with pytest.raises(ValueError):
            omega_for_region(demand, Region.from_points([]))

    def test_single_point_small_demand(self):
        demand = DemandMap({(0, 0): 5.0})
        # omega = 1 gives 1 * |B(1)| = 5.
        assert omega_for_region(demand, [(0, 0)]) == pytest.approx(1.0)

    def test_region_without_demand(self):
        demand = DemandMap({(0, 0): 5.0})
        assert omega_for_region(demand, [(10, 10)]) == 0.0

    def test_box_path_matches_region_path(self):
        demand = DemandMap({(x, y): 3.0 for x in range(3) for y in range(3)})
        box = Box.cube((0, 0), 3)
        via_region = omega_for_region(demand, Region.from_box(box))
        via_box = omega_for_box(demand, box)
        assert via_region == pytest.approx(via_box)

    def test_adding_zero_demand_point_lowers_omega(self):
        demand = DemandMap({(0, 0): 50.0})
        small = omega_for_region(demand, [(0, 0)])
        bigger = omega_for_region(demand, [(0, 0), (10, 0)])
        assert bigger <= small

    def test_scaling_demand_raises_omega(self):
        base = DemandMap({(0, 0): 10.0, (1, 0): 10.0})
        scaled = base.scaled(4.0)
        region = [(0, 0), (1, 0)]
        assert omega_for_region(scaled, region) > omega_for_region(base, region)

    def test_one_dimensional(self):
        demand = DemandMap({(0,): 6.0})
        # omega = 2: 2 * |B_1(2)| = 2 * 5 = 10 >= 6, omega = 6/5 = 1.2 at k=1?
        # k=1: (1+1)*3 = 6 >= 6 -> omega = 6/3 = 2.0 -> max(1, 2.0)... but 2.0 > 2?
        value = omega_for_region(demand, [(0,)])
        k = int(math.floor(value))
        assert value * (2 * k + 1) >= 6 - 1e-9


class TestOmegaStar:
    def test_exhaustive_empty(self):
        result = omega_star_exhaustive(DemandMap({}, dim=2))
        assert result.omega == 0.0
        assert result.region is None

    def test_exhaustive_guard(self):
        demand = DemandMap({(x, 0): 1.0 for x in range(25)})
        with pytest.raises(ValueError):
            omega_star_exhaustive(demand)

    def test_cubes_empty(self):
        assert omega_star_cubes(DemandMap({}, dim=2)).omega == 0.0

    def test_single_point(self):
        demand = DemandMap({(0, 0): 5.0})
        assert omega_star_cubes(demand).omega == pytest.approx(1.0)
        assert omega_star_exhaustive(demand).omega == pytest.approx(1.0)

    def test_cubes_vs_exhaustive_small_instances(self, tiny_demand):
        # Corollary 2.2.6: the cube-restricted maximum is a lower bound on the
        # subset maximum, and both are within the same constant of W_off.
        cubes = omega_star_cubes(tiny_demand).omega
        exhaustive = omega_star_exhaustive(tiny_demand).omega
        assert cubes <= exhaustive + 1e-9
        assert exhaustive <= 5 * cubes  # far looser than the thesis constant

    def test_cubes_equals_exhaustive_for_uniform_square(self, small_square_demand):
        cubes = omega_star_cubes(small_square_demand).omega
        exhaustive = omega_star_exhaustive(small_square_demand).omega
        assert cubes == pytest.approx(exhaustive)

    def test_return_region_contains_heavy_point(self):
        demand = DemandMap({(0, 0): 100.0, (9, 9): 1.0})
        result = omega_star_cubes(demand, return_region=True)
        assert result.region is not None
        assert (0, 0) in result.region

    def test_max_side_cap(self):
        demand = DemandMap({(x, y): 2.0 for x in range(6) for y in range(6)})
        capped = omega_star_cubes(demand, max_side=2).omega
        full = omega_star_cubes(demand).omega
        assert capped <= full + 1e-9

    def test_translation_invariance(self):
        base = DemandMap({(0, 0): 7.0, (2, 1): 3.0})
        shifted = DemandMap({(10, -5): 7.0, (12, -4): 3.0})
        assert omega_star_cubes(base).omega == pytest.approx(omega_star_cubes(shifted).omega)

    def test_scaling_monotone(self):
        base = DemandMap({(x, y): 4.0 for x in range(3) for y in range(3)})
        assert omega_star_cubes(base.scaled(3)).omega >= omega_star_cubes(base).omega


class TestOmegaC:
    def test_empty(self):
        assert omega_c(DemandMap({}, dim=2)) == 0.0

    def test_lower_bounds_omega_star(self, tiny_demand):
        # Corollary 2.2.7's proof shows omega_c <= max_T omega_T.
        assert omega_c(tiny_demand) <= omega_star_cubes(tiny_demand).omega + 1e-9

    def test_lower_bounds_omega_star_square(self, small_square_demand):
        assert omega_c(small_square_demand) <= omega_star_cubes(small_square_demand).omega + 1e-9

    def test_single_heavy_point(self):
        demand = DemandMap({(0, 0): 90.0})
        value = omega_c(demand)
        # omega_c is the infimum of the feasible set, so feasibility holds for
        # any omega strictly above it (check just above the returned value).
        probe = value + 1e-6
        side = max(1, int(math.ceil(probe)))
        assert probe * (3 * side) ** 2 >= 90.0 - 1e-3
        assert 0.0 < value <= omega_star_cubes(demand).omega + 1e-9

    def test_positive_for_positive_demand(self):
        assert omega_c(DemandMap({(0, 0): 0.5})) > 0.0

    def test_scaling_monotone(self):
        base = DemandMap({(x, y): 2.0 for x in range(4) for y in range(4)})
        assert omega_c(base.scaled(10)) >= omega_c(base)


class TestExampleBounds:
    def test_square_bound_satisfies_equation(self):
        a, d = 10, 30.0
        w = example_square_bound(a, d)
        assert w * (2 * w + a) ** 2 == pytest.approx(d * a * a, rel=1e-6)

    def test_square_bound_approaches_d_for_large_a(self):
        d = 16.0
        small_a = example_square_bound(4, d)
        large_a = example_square_bound(4000, d)
        assert large_a > small_a
        assert large_a == pytest.approx(d, rel=0.05)

    def test_line_bound_satisfies_equation(self):
        d = 40.0
        w = example_line_bound(d)
        assert w * (2 * w + 1) == pytest.approx(d, rel=1e-9)

    def test_line_bound_scales_as_sqrt(self):
        assert example_line_bound(400.0) == pytest.approx(
            math.sqrt(2) * example_line_bound(200.0), rel=0.1
        )

    def test_point_bound_satisfies_equation(self):
        d = 500.0
        w = example_point_bound(d)
        assert w * (2 * w + 1) ** 2 == pytest.approx(d, rel=1e-6)

    def test_point_bound_scales_as_cube_root(self):
        assert example_point_bound(8000.0) == pytest.approx(
            2 * example_point_bound(1000.0), rel=0.1
        )

    def test_zero_demand(self):
        assert example_square_bound(5, 0.0) == 0.0
        assert example_line_bound(0.0) == 0.0
        assert example_point_bound(0.0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            example_square_bound(0, 1.0)
        with pytest.raises(ValueError):
            example_line_bound(-1.0)
        with pytest.raises(ValueError):
            example_point_bound(-2.0)
