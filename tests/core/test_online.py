"""Tests for the online harness (run_online, Theorem 1.4.2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandMap, JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.omega import omega_star_cubes
from repro.core.online import run_online
from repro.distsim.failures import FailurePlan
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import random_arrivals, sequential_arrivals
from repro.workloads.generators import line_demand, point_demand, square_demand


class TestEmptyAndTrivialRuns:
    def test_empty_sequence(self):
        result = run_online(JobSequence([]))
        assert result.feasible
        assert result.jobs_total == 0
        assert result.max_vehicle_energy == 0.0

    def test_single_job(self):
        result = run_online(JobSequence.from_positions([(0, 0)]))
        assert result.feasible
        assert result.jobs_served == 1
        assert result.max_vehicle_energy == pytest.approx(1.0)


class TestTheoremCapacityRuns:
    @pytest.mark.parametrize(
        "demand",
        [square_demand(4, 6.0), line_demand(8, 5.0), point_demand(40.0)],
        ids=["square", "line", "point"],
    )
    def test_all_jobs_served_with_theorem_capacity(self, demand, rng):
        jobs = random_arrivals(demand, rng)
        result = run_online(jobs)
        assert result.feasible
        assert result.jobs_served == result.jobs_total

    @pytest.mark.parametrize(
        "demand",
        [square_demand(4, 6.0), point_demand(40.0)],
        ids=["square", "point"],
    )
    def test_no_vehicle_exceeds_theorem_capacity(self, demand, rng):
        jobs = random_arrivals(demand, rng)
        result = run_online(jobs)
        assert result.capacity == pytest.approx(result.theorem_capacity)
        assert result.max_vehicle_energy <= result.capacity + 1e-9

    def test_theorem_capacity_formula(self):
        demand = square_demand(4, 6.0)
        jobs = sequential_arrivals(demand)
        result = run_online(jobs, omega=2.0)
        assert result.theorem_capacity == pytest.approx(
            online_upper_bound_factor(2) * 2.0
        )

    def test_online_energy_within_constant_of_offline_lower_bound(self, rng):
        # Theorem 1.4.2: the online requirement is O(omega*); the realized
        # constant must stay below the analytic (4 * 3^l + l) factor.
        demand = square_demand(5, 8.0)
        jobs = random_arrivals(demand, rng)
        result = run_online(jobs)
        assert result.omega_star == pytest.approx(omega_star_cubes(demand).omega)
        assert result.max_vehicle_energy >= 1.0
        limit = online_upper_bound_factor(2) * max(result.omega, result.omega_star)
        assert result.max_vehicle_energy <= limit + 1e-9

    def test_total_service_matches_job_count(self, rng):
        demand = square_demand(3, 4.0)
        jobs = random_arrivals(demand, rng)
        result = run_online(jobs)
        assert result.total_service == pytest.approx(float(len(jobs)))


class TestExplicitOmegaAndCapacity:
    def test_small_capacity_forces_replacements(self):
        jobs = JobSequence.from_positions([(0, 0)] * 12)
        result = run_online(jobs, omega=3.0, capacity=8.0)
        assert result.feasible
        assert result.replacements >= 1
        assert result.messages > 0

    def test_too_small_capacity_is_reported_infeasible(self):
        jobs = JobSequence.from_positions([(0, 0)] * 40)
        result = run_online(jobs, omega=3.0, capacity=4.0)
        assert not result.feasible
        assert result.jobs_served < result.jobs_total

    def test_unbounded_capacity_measurement_mode(self):
        jobs = JobSequence.from_positions([(0, 0)] * 15)
        result = run_online(jobs, omega=3.0, capacity=None)
        assert result.feasible
        assert result.capacity is None
        # One vehicle serves everything (it never exhausts).
        assert result.replacements == 0
        assert result.max_vehicle_energy == pytest.approx(15.0)

    def test_invalid_omega(self):
        jobs = JobSequence.from_positions([(0, 0)])
        with pytest.raises(ValueError):
            run_online(jobs, omega=0.0)

    def test_vehicle_energies_reported(self):
        jobs = JobSequence.from_positions([(0, 0)] * 5)
        result = run_online(jobs, omega=2.0)
        assert sum(result.vehicle_energies.values()) == pytest.approx(
            result.total_travel + result.total_service
        )

    def test_online_to_offline_ratio(self):
        jobs = JobSequence.from_positions([(0, 0)] * 9)
        result = run_online(jobs, omega=2.0)
        assert result.online_to_offline_ratio == pytest.approx(
            result.max_vehicle_energy / result.omega_star
        )

    def test_ratio_is_infinite_when_energy_spent_against_zero_bound(self):
        """A degenerate scenario with omega* == 0 but positive energy drawn
        violates any multiplicative bound -- it must not masquerade as
        meeting the Theorem 1.4.2 constant with a clean-looking 1.0."""
        import dataclasses
        import math

        base = run_online(JobSequence.from_positions([(0, 0)] * 3))
        degenerate = dataclasses.replace(base, omega_star=0.0)
        assert degenerate.max_vehicle_energy > 0
        assert degenerate.online_to_offline_ratio == math.inf

    def test_ratio_is_one_when_nothing_spent_against_zero_bound(self):
        result = run_online(JobSequence([]))
        assert result.omega_star == 0.0
        assert result.max_vehicle_energy == 0.0
        assert result.online_to_offline_ratio == 1.0


class TestFailuresThroughHarness:
    def test_dead_vehicle_recovered_via_monitoring(self):
        jobs = JobSequence.from_positions([(0, 0)] * 6)
        config = FleetConfig(monitoring=True)
        plan = FailurePlan()
        # Note: crashing through the harness requires knowing the initial
        # active vehicle, which is the pair's black vertex (0, 0) itself; the
        # suppression flag models scenario 2 instead.
        plan.suppress_initiation((0, 0))
        result = run_online(
            jobs,
            omega=3.0,
            capacity=5.0,
            config=config,
            failure_plan=plan,
            recovery_rounds=4,
        )
        assert result.feasible

    def test_without_recovery_suppression_causes_unserved_jobs(self):
        jobs = JobSequence.from_positions([(0, 0)] * 10)
        plan = FailurePlan()
        plan.suppress_initiation((0, 0))
        result = run_online(jobs, omega=3.0, capacity=5.0, failure_plan=plan)
        assert not result.feasible

    def test_deterministic_given_seed(self):
        demand = square_demand(4, 5.0)
        jobs = random_arrivals(demand, np.random.default_rng(1))
        first = run_online(jobs, omega=2.0, rng=np.random.default_rng(2))
        second = run_online(jobs, omega=2.0, rng=np.random.default_rng(2))
        assert first.max_vehicle_energy == second.max_vehicle_energy
        assert first.messages == second.messages
        assert first.vehicle_energies == second.vehicle_energies
