"""Tests for service plans and the Lemma 2.2.5 constructive plan."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan
from repro.core.offline import upper_bound_factor
from repro.core.omega import omega_star_cubes
from repro.core.plan import ServicePlan, VehicleRoute, build_cube_plan, plan_window
from repro.grid.lattice import Box
from repro.workloads.generators import line_demand, point_demand, square_demand


class TestVehicleRoute:
    def test_travel_cost_along_route(self):
        route = VehicleRoute(start=(0, 0), stops=(((2, 0), 1.0), ((2, 3), 2.0)))
        assert route.travel_cost == 2 + 3
        assert route.service_energy == 3.0
        assert route.total_energy == 8.0

    def test_home_service_costs_no_travel(self):
        route = VehicleRoute(start=(1, 1), stops=(((1, 1), 5.0),))
        assert route.travel_cost == 0.0
        assert route.total_energy == 5.0

    def test_negative_service_raises(self):
        with pytest.raises(ValueError):
            VehicleRoute(start=(0, 0), stops=(((0, 0), -1.0),))

    def test_served_at_aggregates(self):
        route = VehicleRoute(start=(0, 0), stops=(((1, 0), 1.0), ((1, 0), 2.0)))
        assert route.served_at() == {(1, 0): 3.0}

    def test_empty_route(self):
        route = VehicleRoute(start=(0, 0))
        assert route.total_energy == 0.0
        assert route.served_at() == {}


class TestServicePlan:
    def test_add_skips_empty_routes(self):
        plan = ServicePlan(dim=2)
        plan.add(VehicleRoute(start=(0, 0)))
        assert len(plan) == 0

    def test_served_by_position(self):
        plan = ServicePlan(dim=2)
        plan.add(VehicleRoute(start=(0, 0), stops=(((1, 0), 2.0),)))
        plan.add(VehicleRoute(start=(2, 0), stops=(((1, 0), 3.0),)))
        assert plan.served_by_position() == {(1, 0): 5.0}

    def test_max_and_total_energy(self):
        plan = ServicePlan(dim=2)
        plan.add(VehicleRoute(start=(0, 0), stops=(((1, 0), 2.0),)))   # 3 energy
        plan.add(VehicleRoute(start=(5, 0), stops=(((5, 0), 1.0),)))   # 1 energy
        assert plan.max_vehicle_energy() == 3.0
        assert plan.total_energy() == 4.0
        assert plan.total_travel() == 1.0

    def test_empty_plan_statistics(self):
        plan = ServicePlan(dim=2)
        assert plan.max_vehicle_energy() == 0.0
        assert plan.total_energy() == 0.0
        assert plan.vehicles_used() == []


class TestPlanWindow:
    def test_window_is_multiple_of_side(self):
        demand = DemandMap({(0, 0): 1.0, (4, 7): 1.0})
        window = plan_window(demand, 3)
        assert all(length % 3 == 0 for length in window.side_lengths)
        for point in demand.support():
            assert point in window

    def test_window_contains_support_for_various_sides(self):
        demand = DemandMap({(2, -3): 1.0, (9, 5): 2.0})
        for side in (1, 2, 4, 5):
            window = plan_window(demand, side)
            for point in demand.support():
                assert point in window


class TestBuildCubePlan:
    @pytest.mark.parametrize(
        "demand",
        [
            square_demand(4, 5.0),
            square_demand(6, 12.0),
            line_demand(12, 8.0),
            point_demand(200.0),
            DemandMap({(0, 0): 3.0, (7, 2): 9.0, (3, 3): 1.0}),
        ],
        ids=["square4", "square6", "line12", "point", "scattered"],
    )
    def test_plan_covers_demand(self, demand):
        plan = build_cube_plan(demand)
        audit = audit_plan(plan, demand)
        assert audit.feasible, audit.violations

    @pytest.mark.parametrize(
        "demand",
        [square_demand(4, 5.0), line_demand(12, 8.0), point_demand(200.0)],
        ids=["square4", "line12", "point"],
    )
    def test_plan_respects_lemma_2_2_5_budget(self, demand):
        omega = omega_star_cubes(demand).omega
        plan = build_cube_plan(demand, omega=omega)
        budget = upper_bound_factor(demand.dim) * omega
        assert plan.max_vehicle_energy() <= budget + 1e-6

    def test_vehicles_stay_inside_their_cube(self):
        demand = square_demand(6, 10.0)
        plan = build_cube_plan(demand)
        side = int(plan.metadata["cube_side"])
        window = plan_window(demand, side)
        from repro.grid.cubes import CubeGrid

        grid = CubeGrid(window, side)
        for route in plan:
            home_cube = grid.cube_index(route.start)
            for position, _ in route.stops:
                assert grid.cube_index(position) == home_cube

    def test_each_vehicle_used_once(self):
        demand = square_demand(5, 9.0)
        plan = build_cube_plan(demand)
        starts = [route.start for route in plan]
        assert len(starts) == len(set(starts))

    def test_empty_demand_gives_empty_plan(self):
        plan = build_cube_plan(DemandMap({}, dim=2))
        assert len(plan) == 0

    def test_explicit_omega_and_cap(self):
        demand = point_demand(30.0)
        plan = build_cube_plan(demand, omega=2.0, service_cap=10.0)
        audit = audit_plan(plan, demand)
        assert audit.feasible
        # No vehicle serves more than 2 * cap in service energy.
        for route in plan:
            assert route.service_energy <= 20.0 + 1e-9

    def test_invalid_arguments(self):
        demand = point_demand(5.0)
        with pytest.raises(ValueError):
            build_cube_plan(demand, omega=0.0)
        with pytest.raises(ValueError):
            build_cube_plan(demand, omega=1.0, service_cap=0.0)

    def test_one_dimensional_demand(self):
        demand = DemandMap({(x,): 4.0 for x in range(9)})
        plan = build_cube_plan(demand)
        audit = audit_plan(plan, demand)
        assert audit.feasible
        budget = upper_bound_factor(1) * omega_star_cubes(demand).omega
        assert plan.max_vehicle_energy() <= budget + 1e-6

    def test_three_dimensional_demand(self):
        demand = DemandMap({(x, y, z): 2.0 for x in range(2) for y in range(2) for z in range(2)})
        plan = build_cube_plan(demand)
        assert audit_plan(plan, demand).feasible

    def test_metadata_recorded(self):
        demand = square_demand(3, 4.0)
        plan = build_cube_plan(demand)
        assert "omega" in plan.metadata
        assert "cube_side" in plan.metadata
        assert plan.metadata["cube_side"] >= 1
