"""Tests for Chapter 5: inter-vehicle energy transfers."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.omega import omega_star_cubes
from repro.core.transfer import (
    TransferAccounting,
    line_tank_requirement,
    simulate_line_collection,
    square_import_capacity,
    transfer_lower_bound,
)
from repro.workloads.generators import square_demand


class TestSquareImportCapacity:
    def test_zero_capacity(self):
        assert square_import_capacity(0.0, 3) == 0.0

    def test_closed_form(self):
        w, s = 3.0, 2
        expected = w * (s * s + 4 * w * w + 4 * s * w - 8 * w - 4 * s + 4)
        assert square_import_capacity(w, s) == pytest.approx(expected)

    def test_monotone_in_capacity(self):
        values = [square_import_capacity(w, 4) for w in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_monotone_in_side(self):
        values = [square_import_capacity(3.0, s) for s in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            square_import_capacity(-1.0, 2)
        with pytest.raises(ValueError):
            square_import_capacity(1.0, 0)


class TestTransferLowerBound:
    def test_empty_demand(self):
        assert transfer_lower_bound(DemandMap({}, dim=2)) == 0.0

    def test_requires_two_dimensions(self):
        with pytest.raises(ValueError):
            transfer_lower_bound(DemandMap({(0,): 5.0}))

    def test_lower_bounds_omega_star(self):
        # Theorem 5.1.1: transfers can only help, so the transfer-aware
        # requirement is at most W_off; in particular it is at most the
        # constructive upper bound and at least a constant fraction of omega*.
        demand = square_demand(6, 20.0)
        bound = transfer_lower_bound(demand)
        omega_star = omega_star_cubes(demand).omega
        assert bound > 0
        assert bound <= omega_star + 1e-9  # transfers never hurt

    def test_same_order_as_omega_star(self):
        # W_trans-off = Theta(W_off): the ratio stays bounded as demand scales.
        ratios = []
        for scale in (1.0, 4.0, 16.0):
            demand = square_demand(6, 20.0 * scale)
            ratio = omega_star_cubes(demand).omega / transfer_lower_bound(demand)
            ratios.append(ratio)
        assert max(ratios) <= 10.0
        assert min(ratios) >= 1.0

    def test_monotone_in_demand(self):
        low = transfer_lower_bound(square_demand(5, 10.0))
        high = transfer_lower_bound(square_demand(5, 100.0))
        assert high >= low


class TestLineTankClosedForms:
    def test_fixed_cost_formula(self):
        demands = [2.0] * 10
        value = line_tank_requirement(demands, accounting=TransferAccounting.FIXED, a1=0.5)
        n, total = 10, 20.0
        expected = (0.5 * (2 * n - 3) + (2 * n - 2) + total) / n
        assert value == pytest.approx(expected)

    def test_variable_cost_formula(self):
        demands = [3.0] * 8
        value = line_tank_requirement(demands, accounting=TransferAccounting.VARIABLE, a2=0.05)
        n, total = 8, 24.0
        expected = (2 * n - 2 + total) / (n - 2 * 0.05 * n + 3 * 0.05)
        assert value == pytest.approx(expected)

    def test_requirement_tracks_average_demand(self):
        # W_trans-off = Theta(avg d): doubling every demand roughly doubles it
        # once demands dominate the travel term.
        base = [50.0] * 20
        doubled = [100.0] * 20
        low = line_tank_requirement(base, accounting=TransferAccounting.FIXED, a1=1.0)
        high = line_tank_requirement(doubled, accounting=TransferAccounting.FIXED, a1=1.0)
        assert high / low == pytest.approx(2.0, rel=0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            line_tank_requirement([1.0], accounting=TransferAccounting.FIXED)
        with pytest.raises(ValueError):
            line_tank_requirement([1.0, -1.0], accounting=TransferAccounting.FIXED)
        with pytest.raises(ValueError):
            line_tank_requirement([1.0, 1.0], accounting=TransferAccounting.FIXED, a1=-1.0)
        with pytest.raises(ValueError):
            line_tank_requirement([1.0, 1.0], accounting=TransferAccounting.VARIABLE, a2=0.7)


class TestLineCollectionSimulation:
    def _min_feasible_charge(self, demands, accounting, a1=0.0, a2=0.0) -> float:
        lo, hi = 0.0, 10.0
        while not simulate_line_collection(
            demands, hi, accounting=accounting, a1=a1, a2=a2
        ).feasible:
            hi *= 2.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if simulate_line_collection(
                demands, mid, accounting=accounting, a1=a1, a2=a2
            ).feasible:
                hi = mid
            else:
                lo = mid
        return hi

    def test_transfer_and_distance_counts(self):
        demands = [1.0] * 6
        result = simulate_line_collection(
            demands, 10.0, accounting=TransferAccounting.FIXED, a1=0.1
        )
        n = 6
        assert result.transfers == 2 * n - 3
        assert result.distance == 2 * n - 2
        assert result.feasible

    def test_infeasible_with_tiny_charge(self):
        demands = [5.0] * 6
        result = simulate_line_collection(
            demands, 0.5, accounting=TransferAccounting.FIXED, a1=0.0
        )
        assert not result.feasible

    def test_minimum_charge_matches_fixed_closed_form(self):
        demands = [4.0, 7.0, 1.0, 9.0, 3.0, 6.0, 2.0, 8.0]
        a1 = 0.5
        simulated = self._min_feasible_charge(demands, TransferAccounting.FIXED, a1=a1)
        closed_form = line_tank_requirement(
            demands, accounting=TransferAccounting.FIXED, a1=a1
        )
        assert simulated == pytest.approx(closed_form, rel=0.05)

    def test_minimum_charge_theta_of_average_demand(self):
        # The requirement scales with the average demand, not the maximum
        # possible no-transfer requirement (which would be ~max demand).
        demands = [0.0] * 19 + [200.0]
        simulated = self._min_feasible_charge(demands, TransferAccounting.FIXED, a1=0.2)
        average = sum(demands) / len(demands)
        assert simulated < 3 * average + 5
        assert simulated >= average - 1e-6

    def test_variable_cost_overhead_proportional_to_transferred(self):
        demands = [2.0] * 5
        result = simulate_line_collection(
            demands, 10.0, accounting=TransferAccounting.VARIABLE, a2=0.1
        )
        assert result.feasible
        assert result.transfer_overhead > 0

    def test_invalid_line(self):
        with pytest.raises(ValueError):
            simulate_line_collection([1.0], 5.0, accounting=TransferAccounting.FIXED)
