"""Tests for the generic Dijkstra--Scholten diffusing computation."""

from __future__ import annotations

from typing import Dict, Hashable, List

import numpy as np
import pytest

from repro.distsim.diffusing import DiffusingComputation


def line_topology(n: int) -> Dict[int, List[int]]:
    """A path 0 - 1 - ... - (n-1)."""
    topology: Dict[int, List[int]] = {i: [] for i in range(n)}
    for i in range(n - 1):
        topology[i].append(i + 1)
        topology[i + 1].append(i)
    return topology


def grid_topology(rows: int, cols: int) -> Dict[tuple, List[tuple]]:
    """A rows x cols grid with 4-neighbor adjacency."""
    topology: Dict[tuple, List[tuple]] = {}
    for r in range(rows):
        for c in range(cols):
            neighbors = []
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    neighbors.append((nr, nc))
            topology[(r, c)] = neighbors
    return topology


class TestSearchOnLine:
    def test_finds_target_at_far_end(self):
        comp = DiffusingComputation(line_topology(6), targets=lambda i: i == 5)
        result = comp.search(0)
        assert result.found
        assert result.target == 5
        assert result.path[0] == 0
        assert result.path[-1] == 5

    def test_path_follows_edges(self):
        comp = DiffusingComputation(line_topology(6), targets=lambda i: i == 5)
        result = comp.search(0)
        for a, b in zip(result.path, result.path[1:]):
            assert abs(a - b) == 1

    def test_no_target_terminates_with_not_found(self):
        comp = DiffusingComputation(line_topology(6), targets=lambda i: False)
        result = comp.search(0)
        assert not result.found
        assert result.target is None

    def test_nearest_of_multiple_targets_is_reachable(self):
        comp = DiffusingComputation(line_topology(8), targets=lambda i: i in (3, 7))
        result = comp.search(0)
        assert result.found
        assert result.target in (3, 7)

    def test_single_node_no_neighbors(self):
        comp = DiffusingComputation({0: []}, targets=lambda i: False)
        result = comp.search(0)
        assert not result.found


class TestSearchOnGrid:
    def test_finds_target_on_grid(self):
        topology = grid_topology(4, 4)
        comp = DiffusingComputation(topology, targets=lambda p: p == (3, 3))
        result = comp.search((0, 0))
        assert result.found
        assert result.target == (3, 3)
        # The path must follow grid edges.
        for a, b in zip(result.path, result.path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_every_root_finds_the_unique_target(self):
        topology = grid_topology(3, 3)
        comp = DiffusingComputation(topology, targets=lambda p: p == (1, 1))
        for root in topology:
            if root == (1, 1):
                continue
            result = comp.search(root)
            assert result.found, f"root {root} failed"
            assert result.target == (1, 1)

    def test_randomized_delays_still_terminate(self):
        topology = grid_topology(4, 4)
        comp = DiffusingComputation(
            topology,
            targets=lambda p: p == (3, 0),
            rng=np.random.default_rng(3),
        )
        result = comp.search((0, 3))
        assert result.found

    def test_message_count_bounded_by_two_per_edge_per_direction(self):
        topology = grid_topology(4, 4)
        edges = sum(len(neighbors) for neighbors in topology.values())  # directed count
        comp = DiffusingComputation(topology, targets=lambda p: False)
        result = comp.search((0, 0))
        # Each directed edge carries at most one query and one reply.
        assert result.messages <= 2 * edges

    def test_sequential_searches_are_independent(self):
        topology = grid_topology(3, 3)
        comp = DiffusingComputation(topology, targets=lambda p: p == (2, 2))
        first = comp.search((0, 0))
        second = comp.search((0, 2))
        assert first.found and second.found
        assert second.path[0] == (0, 2)


class TestValidation:
    def test_asymmetric_topology_rejected(self):
        with pytest.raises(ValueError):
            DiffusingComputation({0: [1], 1: []}, targets=lambda i: False)

    def test_mutating_target_predicate(self):
        # Targets can change between searches (an idle vehicle becomes active).
        state = {"idle": {2}}
        comp = DiffusingComputation(
            line_topology(4), targets=lambda i: i in state["idle"]
        )
        first = comp.search(0)
        assert first.target == 2
        state["idle"] = set()
        second = comp.search(0)
        assert not second.found


class TestHierarchicalSearch:
    """The protocol-agnostic escalation reference (cross-group widening)."""

    def _line_groups(self):
        # Three groups of three nodes each, chained intra-group.
        groups = {}
        for g in range(3):
            nodes = [f"g{g}n{i}" for i in range(3)]
            groups[g] = {
                nodes[0]: [nodes[1]],
                nodes[1]: [nodes[0], nodes[2]],
                nodes[2]: [nodes[1]],
            }
        order = {g: [[(g + 1) % 3], [(g + 2) % 3]] for g in range(3)}
        return groups, order

    def test_local_hit_never_escalates(self):
        from repro.distsim.diffusing import HierarchicalSearch

        groups, order = self._line_groups()
        search = HierarchicalSearch(groups, lambda n: n == "g0n2", order)
        result = search.search("g0n0")
        assert result.found and result.level == 0 and result.target == "g0n2"

    def test_escalates_to_the_ring_holding_a_target(self):
        from repro.distsim.diffusing import HierarchicalSearch

        groups, order = self._line_groups()
        search = HierarchicalSearch(groups, lambda n: n == "g2n1", order)
        result = search.search("g0n0")
        assert result.found
        assert result.level == 2  # group 2 is in g0's second ring
        assert result.target == "g2n1"
        # Boundary traffic was charged: strictly more messages than the
        # local flood alone.
        local_only = HierarchicalSearch(groups, lambda n: False, {0: []})
        assert result.messages > local_only.search("g0n0").messages

    def test_exhausting_every_ring_reports_failure(self):
        from repro.distsim.diffusing import HierarchicalSearch

        groups, order = self._line_groups()
        search = HierarchicalSearch(groups, lambda n: False, order)
        result = search.search("g1n1")
        assert not result.found and result.level is None and result.target is None

    def test_duplicate_node_ids_rejected(self):
        from repro.distsim.diffusing import HierarchicalSearch

        with pytest.raises(ValueError, match="two groups"):
            HierarchicalSearch(
                {0: {"a": []}, 1: {"a": []}}, lambda n: False, {0: [], 1: []}
            )
