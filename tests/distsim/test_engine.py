"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.distsim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        log = []
        sim.schedule_at(5.0, lambda: log.append(sim.now))
        sim.run()
        assert log == [5.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        log = []

        def chain(depth: int) -> None:
            log.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_not_run(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("no"))
        sim.schedule(2.0, lambda: log.append("yes"))
        event.cancel()
        sim.run()
        assert log == ["yes"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1


class TestRunControls:
    def test_run_until_time_limit(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        sim.run()
        assert log == [1, 5]

    def test_run_max_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(max_events=2)
        assert log == [0, 1]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_run_until_quiescent_guard(self):
        sim = Simulator()

        def reschedule() -> None:
            sim.schedule(1.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run_until_quiescent(max_events=100)

    def test_run_until_quiescent_counts(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        assert sim.run_until_quiescent() == 4
