"""Conformance tests for the event core and the two online drivers.

Covers the three properties the ISSUE pins down: deterministic event
ordering, clock monotonicity, and round-mode vs event-mode equivalence of
the online harness on failure-free runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import run_online
from repro.distsim.engine import Simulator
from repro.distsim.events import EventQueue, ScheduledEvent, SimClock
from repro.distsim.failures import ChurnSpec, FailurePlan, PartitionSpec
from repro.grid.lattice import Box
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import random_arrivals
from repro.workloads.generators import clustered_demand, square_demand


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advancing_to_now_is_a_noop(self):
        clock = SimClock(3.0)
        clock.advance(3.0)
        assert clock.now == 3.0

    def test_rewinding_raises(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(4.999)


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.push(1.0, lambda: None, kind=tag)
        while queue:
            order.append(queue.pop().kind)
        assert order == ["a", "b", "c"]

    def test_cancelled_events_are_skipped_lazily(self):
        queue = EventQueue()
        keep = queue.push(2.0, lambda: None)
        drop = queue.push(1.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(4)]
        events[0].cancel()
        events[2].cancel()
        assert len(queue) == 2

    def test_stats_track_scheduled_and_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        queue.push(2.0, lambda: None)
        queue.pop()
        assert queue.stats.scheduled == 2
        assert queue.stats.cancelled_skipped == 1


class TestSimulatorClockMonotonicity:
    def test_clock_never_regresses_across_a_run(self):
        sim = Simulator()
        observed = []
        for delay in (5.0, 1.0, 3.0, 1.0):
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == 5.0

    def test_scheduling_into_the_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_executes_in_order(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.schedule(2.0, lambda: log.append(("later", sim.now)))
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5), ("later", 2.0)]

    def test_stats_executed_matches_events_processed(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run_until_quiescent()
        assert sim.stats.executed == sim.events_processed == 5


class TestRoundCompatibilityMode:
    def test_run_round_drains_exactly_one_window(self):
        sim = Simulator()
        fired = []
        for delay in (0.25, 0.75, 1.5):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        executed = sim.run_round(round_length=1.0)
        assert executed == 2
        assert fired == [0.25, 0.75]
        assert sim.now == 1.0

    def test_events_scheduled_inside_a_round_settle_within_it(self):
        sim = Simulator()
        fired = []

        def cascade():
            fired.append("first")
            sim.schedule(0.1, lambda: fired.append("second"))

        sim.schedule(0.5, cascade)
        sim.run_round(round_length=1.0)
        assert fired == ["first", "second"]

    def test_run_rounds_equals_one_event_mode_run(self):
        def build():
            sim = Simulator()
            log = []
            for delay in (0.2, 1.3, 2.8, 3.9):
                sim.schedule(delay, lambda d=delay: log.append(d))
            return sim, log

        event_sim, event_log = build()
        event_sim.run_until_quiescent()
        round_sim, round_log = build()
        round_sim.run_rounds(4, round_length=1.0)
        assert round_log == event_log
        assert round_sim.events_processed == event_sim.events_processed

    def test_invalid_round_parameters_raise(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="round_length"):
            sim.run_round(round_length=0.0)
        with pytest.raises(ValueError, match="rounds"):
            sim.run_rounds(-1)

    def test_truncated_round_leaves_clock_resumable(self):
        """max_events truncation must not advance past pending events."""
        sim = Simulator()
        fired = []
        for delay in (0.1, 0.2, 0.6):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run_round(round_length=1.0, max_events=1)
        assert fired == [0.1]
        assert sim.now == 0.1  # not the boundary: events are still pending
        sim.run_round(round_length=1.0)
        assert fired == [0.1, 0.2, 0.6]


def _result_fingerprint(result):
    return (
        result.jobs_served,
        result.feasible,
        result.max_vehicle_energy,
        result.total_travel,
        result.total_service,
        result.replacements,
        result.searches,
        result.messages,
        tuple(sorted(result.vehicle_energies.items())),
    )


class TestRoundVsEventModeEquivalence:
    """On failure-free runs the two drivers must agree exactly."""

    @pytest.mark.parametrize("monitoring", [False, True])
    def test_square_workload_identical(self, monitoring):
        jobs = random_arrivals(square_demand(5, 3.0), np.random.default_rng(0))
        config = FleetConfig(monitoring=monitoring)
        rounds = run_online(
            jobs, config=config, rng=np.random.default_rng(7), engine="rounds"
        )
        events = run_online(
            jobs, config=config, rng=np.random.default_rng(7), engine="events"
        )
        assert _result_fingerprint(rounds) == _result_fingerprint(events)
        assert rounds.engine == "rounds"
        assert events.engine == "events"

    def test_clustered_workload_with_tight_capacity_identical(self):
        demand = clustered_demand(Box.cube((0, 0), 10), 3, 20, np.random.default_rng(1))
        jobs = random_arrivals(demand, np.random.default_rng(2))
        rounds = run_online(jobs, capacity=9.0, omega=2.0, engine="rounds")
        events = run_online(jobs, capacity=9.0, omega=2.0, engine="events")
        assert _result_fingerprint(rounds) == _result_fingerprint(events)

    def test_event_mode_clock_reaches_last_arrival(self):
        jobs = random_arrivals(square_demand(3, 2.0), np.random.default_rng(0))
        result = run_online(jobs, engine="events")
        assert result.sim_time >= float(len(jobs))
        assert result.events_processed >= len(jobs)

    def test_events_is_the_default_engine(self):
        jobs = random_arrivals(square_demand(3, 2.0), np.random.default_rng(0))
        result = run_online(jobs)
        assert result.engine == "events"

    def test_round_mode_barriers_live_on_the_clock(self):
        """engine="rounds" is an adapter over the event clock: each job is a
        round-barrier event, so the simulation time advances through the
        arrival times instead of idling near zero."""
        jobs = random_arrivals(square_demand(3, 2.0), np.random.default_rng(0))
        result = run_online(jobs, engine="rounds")
        assert result.sim_time >= float(len(jobs))
        assert result.events_processed >= len(jobs)

    def test_event_mode_is_deterministic(self):
        jobs = random_arrivals(square_demand(4, 2.0), np.random.default_rng(3))
        first = run_online(jobs, engine="events", rng=np.random.default_rng(11))
        second = run_online(jobs, engine="events", rng=np.random.default_rng(11))
        assert _result_fingerprint(first) == _result_fingerprint(second)

    def test_unknown_engine_rejected(self):
        jobs = random_arrivals(square_demand(2, 1.0), np.random.default_rng(0))
        with pytest.raises(ValueError, match="engine"):
            run_online(jobs, engine="warp")


class TestTimedFailures:
    def test_partition_drops_cross_cut_messages(self):
        plan = FailurePlan()
        plan.add_partition(PartitionSpec(start=2.0, end=4.0, axis=0, boundary=0.5))
        plan.set_time(3.0)
        assert plan.is_partitioned((0, 0), (1, 0))
        assert not plan.is_partitioned((0, 0), (0, 5))
        plan.set_time(4.0)  # window is half-open
        assert not plan.is_partitioned((0, 0), (1, 0))

    def test_crash_and_recover_toggle_message_delivery(self):
        plan = FailurePlan()
        plan.crash("p")
        assert plan.should_drop("p", "q", "hello")
        plan.recover("p")
        assert not plan.should_drop("p", "q", "hello")
        plan.recover("never-crashed")  # unknown identities are ignored

    def test_partition_ignores_non_coordinate_identities(self):
        plan = FailurePlan()
        plan.add_partition(PartitionSpec(start=0.0, end=10.0, axis=0, boundary=0.5))
        plan.set_time(1.0)
        assert not plan.is_partitioned("alice", "bob")

    def test_churn_schedule_changes_a_run(self):
        demand = square_demand(4, 3.0)
        jobs = random_arrivals(demand, np.random.default_rng(0))
        quiet = run_online(jobs, capacity=20.0, omega=2.0, engine="events")
        churned = run_online(
            jobs,
            capacity=20.0,
            omega=2.0,
            engine="events",
            churn=[ChurnSpec(time=1.0, vertex=v, action="leave") for v in demand.support()],
        )
        assert quiet.feasible
        assert churned.jobs_served < quiet.jobs_served

    def test_churn_rejoin_restores_service(self):
        demand = square_demand(4, 3.0)
        jobs = random_arrivals(demand, np.random.default_rng(0))
        churn = [
            ChurnSpec(time=1.0, vertex=v, action="leave") for v in demand.support()
        ] + [ChurnSpec(time=5.0, vertex=v, action="join") for v in demand.support()]
        partial = run_online(jobs, capacity=20.0, omega=2.0, engine="events", churn=churn)
        all_gone = run_online(
            jobs,
            capacity=20.0,
            omega=2.0,
            engine="events",
            churn=[ChurnSpec(time=1.0, vertex=v, action="leave") for v in demand.support()],
        )
        assert partial.jobs_served > all_gone.jobs_served

    def test_event_driver_recovery_installs_replacement_before_retry(self):
        """Recovery heartbeats must run on the clock ahead of the retry.

        Six jobs hit one point whose active vehicle goes done but is
        initiation-suppressed; only the monitoring loop can replace it.
        The event driver must serve everything the round driver serves.
        """
        from repro.core.demand import JobSequence

        jobs = JobSequence.from_positions([(0, 0)] * 6)
        results = {}
        for engine in ("rounds", "events"):
            plan = FailurePlan()
            plan.suppress_initiation((0, 0))
            results[engine] = run_online(
                jobs,
                capacity=4.0,
                omega=2.0,
                config=FleetConfig(monitoring=True),
                failure_plan=plan,
                recovery_rounds=4,
                engine=engine,
            )
        assert results["rounds"].feasible
        assert results["events"].feasible
        assert results["events"].jobs_served == results["rounds"].jobs_served
        assert results["events"].replacements >= 1

    def test_churn_applies_identically_in_both_drivers(self):
        demand = square_demand(4, 3.0)
        jobs = random_arrivals(demand, np.random.default_rng(0))
        churn = [ChurnSpec(time=7.0, vertex=demand.support()[0], action="leave")]
        rounds = run_online(jobs, capacity=20.0, omega=2.0, engine="rounds", churn=churn)
        events = run_online(jobs, capacity=20.0, omega=2.0, engine="events", churn=churn)
        assert _result_fingerprint(rounds) == _result_fingerprint(events)


class TestCalendarQueueBatching:
    """The batched-delivery API of the calendar queue."""

    def test_pop_batch_drains_one_timestamp(self):
        queue = EventQueue()
        for kind in "abc":
            queue.push(1.0, lambda: None, kind=kind)
        queue.push(2.0, lambda: None, kind="later")
        batch = queue.pop_batch()
        assert [event.kind for event in batch] == ["a", "b", "c"]
        assert queue.next_time() == 2.0

    def test_pop_batch_respects_until_and_limit(self):
        queue = EventQueue()
        for _ in range(4):
            queue.push(5.0, lambda: None)
        assert queue.pop_batch(until=4.0) == []
        partial = queue.pop_batch(limit=3)
        assert len(partial) == 3
        assert len(queue.pop_batch()) == 1

    def test_push_many_preserves_sequence_order(self):
        queue = EventQueue()
        queue.push_many([(2.0, lambda: None), (1.0, lambda: None), (2.0, lambda: None)])
        order = [queue.pop().sequence for _ in range(3)]
        assert order == [1, 0, 2]  # (time, sequence) order, exactly as push()

    def test_same_time_events_scheduled_mid_batch_run_after_it(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "nested"]

    def test_cancellation_inside_a_batch_is_honored(self):
        """An event may cancel a same-timestamp event later in its batch."""
        sim = Simulator()
        log = []
        holder = {}

        def assassin():
            log.append("assassin")
            holder["victim"].cancel()

        sim.schedule(1.0, assassin)
        holder["victim"] = sim.schedule(1.0, lambda: log.append("victim"))
        executed = sim.run()
        assert log == ["assassin"]
        assert executed == 1
        assert sim.queue.stats.cancelled_skipped == 1

    def test_batched_run_counts_match_per_event_pops(self):
        def build():
            sim = Simulator()
            for delay in (1.0, 1.0, 2.0, 2.0, 2.0):
                sim.schedule(delay, lambda: None)
            return sim

        batched = build()
        assert batched.run() == 5
        stepped = build()
        while stepped.step():
            pass
        assert stepped.events_processed == batched.events_processed == 5
