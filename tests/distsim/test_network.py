"""Tests for the FIFO message-passing network layer."""

from __future__ import annotations

from typing import Any, Hashable, List

import numpy as np
import pytest

from repro.distsim.engine import Simulator
from repro.distsim.failures import FailurePlan
from repro.distsim.network import Network
from repro.distsim.process import Process


class Recorder(Process):
    """A process that records every message it receives."""

    def __init__(self, identity: Hashable) -> None:
        super().__init__(identity)
        self.received: List[Any] = []
        self.started = False

    def on_start(self) -> None:
        self.started = True

    def on_message(self, sender: Hashable, message: Any) -> None:
        self.received.append((sender, message))


class Echo(Process):
    """A process that replies to every message with an acknowledgement."""

    def on_message(self, sender: Hashable, message: Any) -> None:
        if message != "ack":
            self.send(sender, "ack")


class TestRegistration:
    def test_register_and_lookup(self):
        net = Network()
        proc = Recorder("a")
        net.register(proc)
        assert net.process("a") is proc
        assert "a" in net
        assert "b" not in net

    def test_duplicate_identity_rejected(self):
        net = Network()
        net.register(Recorder("a"))
        with pytest.raises(ValueError):
            net.register(Recorder("a"))

    def test_register_all_and_start(self):
        net = Network()
        procs = [Recorder(i) for i in range(3)]
        net.register_all(procs)
        net.start()
        assert all(p.started for p in procs)

    def test_send_before_attach_raises(self):
        proc = Recorder("lonely")
        with pytest.raises(RuntimeError):
            proc.send("other", "hi")

    def test_unknown_destination_rejected(self):
        net = Network()
        net.register(Recorder("a"))
        with pytest.raises(KeyError):
            net.send("a", "missing", "hi")


class TestDelivery:
    def test_message_delivered(self):
        net = Network(delay=1.0)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        net.send("a", "b", "hello")
        net.run_until_quiescent()
        assert b.received == [("a", "hello")]
        assert net.messages_sent == 1
        assert net.messages_delivered == 1

    def test_fifo_per_link_with_random_delays(self):
        rng = np.random.default_rng(7)
        net = Network(delay=1.0, rng=rng)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        for i in range(50):
            net.send("a", "b", i)
        net.run_until_quiescent()
        payloads = [message for _, message in b.received]
        assert payloads == list(range(50))

    def test_custom_delay_function(self):
        # Delay by payload value: FIFO must still hold per link.
        net = Network(delay=lambda s, d, m: float(10 - m))
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        net.send("a", "b", 0)   # delay 10
        net.send("a", "b", 9)   # delay 1, but must not overtake
        net.run_until_quiescent()
        assert [m for _, m in b.received] == [0, 9]

    def test_negative_delay_rejected(self):
        net = Network(delay=lambda s, d, m: -1.0)
        net.register_all([Recorder("a"), Recorder("b")])
        with pytest.raises(ValueError):
            net.send("a", "b", "boom")

    def test_request_reply_conversation(self):
        net = Network(delay=0.5)
        a, b = Recorder("a"), Echo("b")
        net.register_all([a, b])
        net.send("a", "b", "ping")
        net.run_until_quiescent()
        assert a.received == [("b", "ack")]

    def test_message_log_kept_on_process(self):
        net = Network()
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        net.send("a", "b", "x")
        net.run_until_quiescent()
        assert b.message_log == [("a", "x")]


class TestFailures:
    def test_crashed_destination_drops_messages(self):
        plan = FailurePlan()
        net = Network(failure_plan=plan)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        plan.crash("b")
        net.send("a", "b", "lost")
        net.run_until_quiescent()
        assert b.received == []
        assert net.messages_dropped == 1

    def test_crashed_sender_drops_messages(self):
        plan = FailurePlan()
        net = Network(failure_plan=plan)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        plan.crash("a")
        net.send("a", "b", "lost")
        net.run_until_quiescent()
        assert b.received == []

    def test_crash_after_send_before_delivery(self):
        plan = FailurePlan()
        net = Network(delay=5.0, failure_plan=plan)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        net.send("a", "b", "in-flight")
        plan.crash("b")
        net.run_until_quiescent()
        assert b.received == []

    def test_drop_rule(self):
        plan = FailurePlan()
        plan.add_drop_rule(lambda s, d, m: m == "secret")
        net = Network(failure_plan=plan)
        a, b = Recorder("a"), Recorder("b")
        net.register_all([a, b])
        net.send("a", "b", "secret")
        net.send("a", "b", "public")
        net.run_until_quiescent()
        assert [m for _, m in b.received] == ["public"]

    def test_crashed_process_not_started(self):
        plan = FailurePlan()
        plan.crash("a")
        net = Network(failure_plan=plan)
        a = Recorder("a")
        net.register(a)
        net.start()
        assert not a.started

    def test_initiation_suppression_flag(self):
        plan = FailurePlan()
        plan.suppress_initiation("x")
        assert plan.is_initiation_suppressed("x")
        assert not plan.is_initiation_suppressed("y")
