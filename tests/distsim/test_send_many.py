"""The batched dispatch fast path: Network.send_many / Transport.send_batch.

The contract is byte-identity: a broadcast through ``send_many`` must be
indistinguishable -- delivery order, counters, dropped messages, FIFO
clamping -- from the per-destination ``send`` loop it replaces, on every
transport (fast path on the reliable fixed-delay channel, fallback
everywhere else).
"""

from __future__ import annotations

import pytest

from repro.distsim.engine import Simulator
from repro.distsim.failures import FailurePlan
from repro.distsim.network import Network
from repro.distsim.process import Process
from repro.distsim.transport import (
    LossyTransport,
    RandomJitterTransport,
    ReliableTransport,
    TransportSpec,
)


class Recorder(Process):
    def __init__(self, identity):
        super().__init__(identity)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.network.simulator.now, sender, message))


def _network(transport=None, *, failure_plan=None, delay=0.25):
    net = Network(
        Simulator(), delay=delay, failure_plan=failure_plan, transport=transport
    )
    procs = [Recorder(f"p{i}") for i in range(5)]
    net.register_all(procs)
    return net, procs


def _trace(net, procs):
    net.run_until_quiescent()
    return [
        (p.identity, p.received) for p in procs
    ], (net.messages_sent, net.messages_delivered, net.messages_dropped)


class TestReliableFastPath:
    def test_identical_to_sequential_sends(self):
        targets = ["p1", "p2", "p3", "p4"]
        batched, procs_a = _network(ReliableTransport(0.25))
        batched.send_many("p0", targets, "hello")
        sequential, procs_b = _network(ReliableTransport(0.25))
        for t in targets:
            sequential.send("p0", t, "hello")
        assert _trace(batched, procs_a) == _trace(sequential, procs_b)

    def test_zero_delay_batch(self):
        batched, procs = _network(ReliableTransport(0.0))
        batched.send_many("p0", ["p1", "p2"], "x")
        trace, counters = _trace(batched, procs)
        assert counters == (2, 2, 0)
        assert dict(trace)["p1"] == [(0.0, "p0", "x")]

    def test_fifo_clamp_preserved_across_batches(self):
        # A slow earlier message on one link must not be overtaken by a
        # later batch on the same link.
        net, procs = _network(ReliableTransport(1.0))
        net.send("p0", "p1", "slow")
        # batch at delay 1.0 again: p1's second message must arrive after
        # its first even though both land at the same nominal time; FIFO
        # clamping keeps per-link order.
        net.send_many("p0", ["p1", "p2"], "fast")
        trace = dict(_trace(net, procs)[0])
        assert [m for _, _, m in trace["p1"]] == ["slow", "fast"]
        assert [m for _, _, m in trace["p2"]] == ["fast"]

    def test_callable_delay_uses_fallback(self):
        transport = ReliableTransport(lambda s, d, m: 0.5)
        assert transport.batch_latency("a", ["b"], "m") is None

    def test_send_batch_clamps_late_links(self):
        # A link whose previous delivery lands *later* than the batch's
        # nominal time must keep per-link FIFO order: the batch's message
        # on that link is pushed out to the previous delivery time while
        # the other links keep the nominal time.
        sim = Simulator()
        transport = ReliableTransport(0.2).bind(sim)
        log = []
        transport.send("a", "b", "slow", lambda m: log.append(("b", m)))
        transport._last_delivery[("a", "b")] = 1.0  # as if a 1.0-delay send
        transport.send_batch(
            "a",
            ["b", "c"],
            "fast",
            lambda dest: (lambda: log.append((dest, "fast"))),
            0.2,
        )
        sim.run()
        assert log == [("b", "slow"), ("c", "fast"), ("b", "fast")]
        assert transport._last_delivery[("a", "b")] == 1.0
        assert transport._last_delivery[("a", "c")] == 0.2

    def test_crashed_destination_dropped(self):
        plan = FailurePlan()
        net, procs = _network(ReliableTransport(0.1), failure_plan=plan)
        plan.crash("p2")
        net.send_many("p0", ["p1", "p2", "p3"], "m")
        trace, (sent, delivered, dropped) = _trace(net, procs)
        assert (sent, delivered, dropped) == (3, 2, 1)
        assert dict(trace)["p2"] == []

    def test_unknown_destination_raises(self):
        net, _ = _network(ReliableTransport(0.1))
        with pytest.raises(KeyError):
            net.send_many("p0", ["p1", "nope"], "m")


class TestFallbackPaths:
    def test_lossy_stream_consumed_in_send_order(self):
        # The seeded loss stream must be drawn per message in destination
        # order, exactly as sequential sends draw it.
        spec = TransportSpec("lossy", {"loss": 0.5, "seed": 7})
        targets = ["p1", "p2", "p3", "p4"]
        batched, procs_a = _network(spec.build())
        batched.send_many("p0", targets, "m")
        sequential, procs_b = _network(spec.build())
        for t in targets:
            sequential.send("p0", t, "m")
        assert _trace(batched, procs_a) == _trace(sequential, procs_b)

    def test_lossy_batch_latency_is_none(self):
        assert LossyTransport(0.1).batch_latency("a", ["b"], "m") is None

    def test_random_jitter_falls_back(self):
        import numpy as np

        rng = np.random.default_rng(0)
        transport = RandomJitterTransport(0.1, rng)
        assert transport.batch_latency("a", ["b"], "m") is None


class TestQueueBatchPush:
    def test_push_many_at_matches_sequential_pushes(self):
        a, b = Simulator(), Simulator()
        log_a, log_b = [], []
        a.queue.push_many_at(1.5, [lambda i=i: log_a.append(i) for i in range(4)])
        for i in range(4):
            b.queue.push(1.5, lambda i=i: log_b.append(i))
        a.run()
        b.run()
        assert log_a == log_b == [0, 1, 2, 3]
        assert a.now == b.now == 1.5

    def test_schedule_batch_at_rejects_past(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_batch_at(0.5, [lambda: None])

    def test_interleaves_with_existing_bucket(self):
        sim = Simulator()
        log = []
        sim.queue.push(1.0, lambda: log.append("first"))
        sim.queue.push_many_at(1.0, [lambda: log.append("second"), lambda: log.append("third")])
        sim.queue.push(1.0, lambda: log.append("fourth"))
        sim.run()
        assert log == ["first", "second", "third", "fourth"]
