"""Unit suite for the cube-sharding layer (:mod:`repro.distsim.sharding`).

Covers the pieces the determinism property tests build on:

* ``ShardPlan`` -- every occupied cube assigned to exactly one shard,
  shard regions contiguous in ancestor order, boundary detection matching
  a brute-force sibling-ring sweep, and the level heuristic.
* ``ShardMailbox`` -- (timestamp, sequence) ordering and prefix drains.
* ``ShardMonitor`` -- intra/cross classification through home cubes.
* ``lockstep_window`` -- transport-latency-driven window selection.
* ``run_lockstep`` -- executes exactly the events ``run_until_quiescent``
  would, in exactly the same order, while counting window barriers.
"""

from __future__ import annotations

import math

import pytest

from repro.distsim.engine import Simulator
from repro.distsim.sharding import (
    ShardMailbox,
    ShardMonitor,
    ShardPlan,
    lockstep_window,
    run_lockstep,
)
from repro.distsim.transport import TransportSpec, build_transport
from repro.grid.cubes import CubeGrid, CubeHierarchy
from repro.grid.lattice import Box


def make_hierarchy(extent: int = 24, side: int = 3, dim: int = 2) -> CubeHierarchy:
    window = Box((0,) * dim, (extent - 1,) * dim)
    return CubeHierarchy(CubeGrid(window, side))


class TestShardPlan:
    def test_every_cube_assigned_exactly_once(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 4)
        seen = [index for shard in range(plan.shards) for index in plan.cubes_of(shard)]
        assert sorted(seen) == list(plan.cubes)
        assert len(seen) == len(set(seen)), "a cube landed in two shards"
        for index in plan.cubes:
            assert 0 <= plan.shard_of(index) < plan.shards

    def test_counts_sum_and_rough_balance(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 4)
        counts = plan.counts()
        assert sum(counts) == len(plan.cubes)
        assert all(count > 0 for count in counts)
        # The greedy walk over ancestor groups stays within one group of fair.
        fair = len(plan.cubes) / plan.shards
        assert max(counts) <= 2 * fair

    def test_shard_regions_are_whole_ancestor_groups_in_order(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 3)
        groups = {}
        for index in plan.cubes:
            groups.setdefault(hierarchy.ancestor(index, plan.level), []).append(index)
        # Groups are atomic (never split across shards) and the walk hands
        # them out in lex ancestor order, so group owners are nondecreasing.
        owners = []
        for ancestor in sorted(groups):
            member_owners = {plan.shard_of(index) for index in groups[ancestor]}
            assert len(member_owners) == 1, f"group {ancestor} split across shards"
            owners.append(member_owners.pop())
        assert owners == sorted(owners)

    def test_sparse_occupancy_only_assigns_given_cubes(self):
        hierarchy = make_hierarchy()
        occupied = [(0, 0), (0, 1), (5, 5), (7, 0), (7, 7)]
        plan = ShardPlan(hierarchy, 2, cubes=occupied)
        assert plan.cubes == tuple(sorted(occupied))
        with pytest.raises(KeyError):
            plan.shard_of((3, 3))
        assert plan.shard_of_or((3, 3), default=7) == 7

    def test_boundary_cubes_match_bruteforce_sibling_rings(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 4)
        for level in (1, 2):
            expected = []
            for index in plan.cubes:
                own = plan.shard_of(index)
                ring = hierarchy.siblings(index, level)
                if any(
                    plan.shard_of_or(s, own) != own
                    for s in ring
                    if s in set(plan.cubes)
                ):
                    expected.append(index)
            assert list(plan.boundary_cubes(level=level)) == expected

    def test_boundary_is_empty_for_single_shard(self):
        plan = ShardPlan(make_hierarchy(), 1)
        assert plan.boundary_cubes() == ()

    def test_more_shards_than_cubes_leaves_empties(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 3, cubes=[(0, 0), (1, 1)])
        assert sum(plan.counts()) == 2
        assert len([c for c in plan.counts() if c == 0]) == 1

    def test_validation(self):
        hierarchy = make_hierarchy()
        with pytest.raises(ValueError):
            ShardPlan(hierarchy, 0)
        with pytest.raises(ValueError):
            ShardPlan(hierarchy, 2, cubes=[])

    def test_deterministic_across_input_order(self):
        hierarchy = make_hierarchy()
        cubes = [(0, 0), (3, 2), (1, 7), (5, 5), (2, 2)]
        a = ShardPlan(hierarchy, 2, cubes=cubes)
        b = ShardPlan(hierarchy, 2, cubes=list(reversed(cubes)))
        assert a.cubes == b.cubes
        assert [a.cubes_of(s) for s in range(2)] == [b.cubes_of(s) for s in range(2)]


class TestShardMailbox:
    def test_sequence_is_the_same_time_tiebreak(self):
        mailbox = ShardMailbox()
        mailbox.post(2.0, 0, 1, "b")
        mailbox.post(1.0, 1, 0, "a")
        mailbox.post(2.0, 1, 0, "c")
        drained = mailbox.drain_until(2.0)
        assert [(entry[0], entry[1]) for entry in drained] == [
            (2.0, 0),
            (1.0, 1),
            (2.0, 2),
        ]
        assert mailbox.exchanged == 3 and len(mailbox) == 0

    def test_drain_is_a_prefix_cut_on_time(self):
        mailbox = ShardMailbox()
        for time in (0.5, 1.0, 1.5, 2.5):
            mailbox.post(time, 0, 1)
        drained = mailbox.drain_until(1.5)
        assert [entry[0] for entry in drained] == [0.5, 1.0, 1.5]
        assert len(mailbox) == 1
        assert [entry[0] for entry in mailbox.drain_until(math.inf)] == [2.5]

    def test_counters(self):
        mailbox = ShardMailbox()
        mailbox.post(1.0, 0, 1)
        mailbox.post(2.0, 1, 0)
        assert mailbox.posted == 2
        mailbox.drain_until(1.0)
        assert mailbox.exchanged == 1


class TestShardMonitor:
    def test_classifies_by_home_cube(self):
        hierarchy = make_hierarchy()
        plan = ShardPlan(hierarchy, 2)
        grid = hierarchy.grid
        simulator = Simulator()
        mailbox = ShardMailbox()
        monitor = ShardMonitor(plan, grid.cube_index, simulator, mailbox)

        left = next(c for c in plan.cubes if plan.shard_of(c) == 0)
        right = next(c for c in plan.cubes if plan.shard_of(c) == 1)
        point_of = {index: box.lo for index, box in grid.cubes()}

        monitor(point_of[left], point_of[left], "ping")
        assert (monitor.intra_shard, monitor.cross_shard) == (1, 0)
        monitor(point_of[left], point_of[right], "ping")
        assert (monitor.intra_shard, monitor.cross_shard) == (1, 1)
        assert mailbox.posted == 1
        (entry,) = mailbox.drain_until(math.inf)
        assert entry[2:] == (0, 1, "str")


class TestLockstepWindow:
    def test_transport_latency_wins(self):
        transport = build_transport(TransportSpec(kind="latency", params={"delay": 2.5}))
        assert lockstep_window(transport, fallback=1.0) == 2.5

    def test_fallback_for_instant_transports(self):
        transport = build_transport(None)  # reliable, zero fixed delay
        assert lockstep_window(transport, fallback=0.25) == 0.25

    def test_unit_floor(self):
        transport = build_transport(None)
        assert lockstep_window(transport, fallback=0.0) == 1.0


class TestRunLockstep:
    @staticmethod
    def _chain(simulator, log, depth):
        """Self-scheduling events: each execution schedules one more."""

        def event(step=0):
            log.append((simulator.now, step))
            if step < depth:
                simulator.schedule_at(simulator.now + 0.7, lambda s=step + 1: event(s))

        return event

    def test_same_events_same_order_as_quiescent(self):
        reference = Simulator()
        ref_log = []
        reference.schedule_at(0.3, self._chain(reference, ref_log, 6))
        reference.run_until_quiescent()

        simulator = Simulator()
        log = []
        simulator.schedule_at(0.3, self._chain(simulator, log, 6))
        executed, barriers = run_lockstep(simulator, 1.0)
        assert log == ref_log
        assert executed == reference.events_processed
        assert barriers >= 1

    def test_empty_windows_are_skipped(self):
        simulator = Simulator()
        hits = []
        simulator.schedule_at(100.0, lambda: hits.append(simulator.now))
        _, barriers = run_lockstep(simulator, 1.0)
        assert hits == [100.0]
        # One barrier just past t=100, not a hundred idle ones.
        assert barriers == 1

    def test_mailbox_drained_at_barriers(self):
        simulator = Simulator()
        mailbox = ShardMailbox()
        simulator.schedule_at(0.5, lambda: mailbox.post(simulator.now, 0, 1))
        simulator.schedule_at(1.5, lambda: mailbox.post(simulator.now, 1, 0))
        run_lockstep(simulator, 1.0, mailbox=mailbox)
        assert len(mailbox) == 0
        assert mailbox.exchanged == 2

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            run_lockstep(Simulator(), 0.0)

    def test_max_events_guard(self):
        simulator = Simulator()

        def forever():
            simulator.schedule_at(simulator.now + 0.1, forever)

        simulator.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError):
            run_lockstep(simulator, 1.0, max_events=50)
