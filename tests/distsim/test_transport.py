"""Tests for the pluggable message-transport layer."""

from __future__ import annotations

import json
from typing import Any, Hashable, List

import pytest

from repro.distsim.engine import Simulator
from repro.distsim.network import Network
from repro.distsim.process import Process
from repro.distsim.transport import (
    CorruptingTransport,
    LatencyTransport,
    LossyTransport,
    ReliableTransport,
    Transport,
    TransportSpec,
    available_transports,
    build_transport,
)
from repro.vehicles.messages import MoveMessage, QueryMessage, ReplyMessage


class Recorder(Process):
    def __init__(self, identity: Hashable) -> None:
        super().__init__(identity)
        self.received: List[Any] = []

    def on_message(self, sender: Hashable, message: Any) -> None:
        self.received.append((sender, message))


def _network(transport: Transport, identities=("a", "b")) -> Network:
    net = Network(transport=transport)
    net.register_all([Recorder(identity) for identity in identities])
    return net


class TestReliableTransport:
    def test_zero_delay_delivers_at_send_time(self):
        net = _network(ReliableTransport())
        net.send("a", "b", "hi")
        net.run_until_quiescent()
        assert net.process("b").received == [("a", "hi")]
        assert net.simulator.now == 0.0

    def test_fixed_delay(self):
        net = _network(ReliableTransport(delay=2.5))
        net.send("a", "b", "hi")
        net.run_until_quiescent()
        assert net.simulator.now == 2.5

    def test_callable_delay_still_fifo(self):
        net = _network(ReliableTransport(delay=lambda s, d, m: float(10 - m)))
        net.send("a", "b", 0)  # delay 10
        net.send("a", "b", 9)  # delay 1, must not overtake
        net.run_until_quiescent()
        assert [m for _, m in net.process("b").received] == [0, 9]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ReliableTransport(delay=-1.0)


class TestLatencyTransport:
    def test_per_edge_delay_is_deterministic_and_stable(self):
        first = LatencyTransport(delay=0.1, jitter=0.5, seed=7)
        second = LatencyTransport(delay=0.1, jitter=0.5, seed=7)
        for transport in (first, second):
            transport.bind(Simulator())
        edges = [("a", "b"), ("b", "a"), ((0, 0), (1, 0))]
        assert [first.latency(s, d, None) for s, d in edges] == [
            second.latency(s, d, None) for s, d in edges
        ]
        # Independent of call order and of message content.
        assert first.latency("a", "b", "x") == first.latency("a", "b", "y")

    def test_different_edges_and_seeds_get_different_delays(self):
        transport = LatencyTransport(delay=0.0, jitter=1.0, seed=0)
        other_seed = LatencyTransport(delay=0.0, jitter=1.0, seed=1)
        assert transport.latency("a", "b", None) != transport.latency("b", "a", None)
        assert transport.latency("a", "b", None) != other_seed.latency("a", "b", None)

    def test_delay_bounded_by_floor_and_jitter(self):
        transport = LatencyTransport(delay=0.2, jitter=0.3, seed=5)
        for edge in [((i, 0), (0, i)) for i in range(20)]:
            delay = transport.latency(edge[0], edge[1], None)
            assert 0.2 <= delay < 0.5

    def test_fifo_survives_jitter(self):
        net = _network(LatencyTransport(delay=0.0, jitter=1.0, seed=3))
        for i in range(20):
            net.send("a", "b", i)
        net.run_until_quiescent()
        assert [m for _, m in net.process("b").received] == list(range(20))


class TestLossyTransport:
    def test_zero_loss_delivers_everything(self):
        net = _network(LossyTransport(loss=0.0))
        for i in range(30):
            net.send("a", "b", i)
        net.run_until_quiescent()
        assert len(net.process("b").received) == 30
        assert net.messages_dropped == 0

    def test_total_loss_delivers_nothing(self):
        net = _network(LossyTransport(loss=1.0))
        for i in range(10):
            net.send("a", "b", i)
        net.run_until_quiescent()
        assert net.process("b").received == []
        assert net.messages_dropped == 10
        assert net.transport.messages_dropped == 10

    def test_seeded_loss_is_deterministic(self):
        def deliveries(seed: int) -> List[int]:
            net = _network(LossyTransport(loss=0.4, seed=seed))
            for i in range(50):
                net.send("a", "b", i)
            net.run_until_quiescent()
            return [m for _, m in net.process("b").received]

        first = deliveries(11)
        assert first == deliveries(11)
        assert first != deliveries(12)
        assert 0 < len(first) < 50

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            LossyTransport(loss=1.5)


class TestCorruptingTransport:
    def _protocol_messages(self) -> List[Any]:
        tag = ((0, 0), 1)
        return [
            QueryMessage(tag, (0, 0), (1, 1), (2, 2)),
            ReplyMessage(tag, (1, 1), True),
            MoveMessage(tag, (0, 0), (1, 1), (2, 2)),
        ]

    def test_only_protocol_messages_are_corrupted(self):
        transport = CorruptingTransport(rate=1.0, seed=0)
        transport.bind(Simulator())
        assert transport.mutate("a", "b", "heartbeat") == "heartbeat"
        for message in self._protocol_messages():
            mutated = transport.mutate("a", "b", message)
            assert type(mutated) is type(message)
            assert mutated != message

    def test_mutations_preserve_field_types(self):
        transport = CorruptingTransport(rate=1.0, seed=42)
        transport.bind(Simulator())
        for _ in range(50):
            for message in self._protocol_messages():
                mutated = transport.mutate("a", "b", message)
                initiator, round_id = mutated.tag
                assert isinstance(round_id, int)
                if isinstance(mutated, ReplyMessage):
                    assert isinstance(mutated.flag, bool)
                else:
                    assert all(isinstance(c, int) for c in mutated.destination)
                    assert all(isinstance(c, int) for c in mutated.pair_key)

    def test_zero_rate_never_corrupts(self):
        transport = CorruptingTransport(rate=0.0, seed=0)
        transport.bind(Simulator())
        for message in self._protocol_messages():
            assert transport.mutate("a", "b", message) is message

    def test_corruption_counter_tracks_mutations(self):
        net = _network(CorruptingTransport(rate=1.0, seed=1), identities=[(0, 0), (1, 1)])
        tag = ((0, 0), 1)
        net.send((0, 0), (1, 1), ReplyMessage(tag, (0, 0), True))
        net.run_until_quiescent()
        assert net.transport.messages_corrupted == 1
        ((_, delivered),) = net.process((1, 1)).received
        assert isinstance(delivered, ReplyMessage)


class TestTransportSpec:
    def test_round_trips_through_json(self):
        for kind in available_transports():
            spec = TransportSpec(kind=kind)
            restored = TransportSpec.from_json(json.loads(json.dumps(spec.to_json())))
            assert restored == spec

    def test_params_round_trip_and_normalize(self):
        spec = TransportSpec("lossy", {"seed": 3, "loss": 0.25})
        assert spec.params == (("loss", 0.25), ("seed", 3))
        restored = TransportSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.build().loss == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown transport kind"):
            TransportSpec("warp-drive")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            TransportSpec("reliable", {"loss": 0.5})

    def test_invalid_param_value_rejected_eagerly(self):
        with pytest.raises(ValueError, match="probability"):
            TransportSpec("lossy", {"loss": 2.0})

    def test_junk_typed_params_raise_value_error_not_type_error(self):
        # The CLI and config layers catch ValueError only; junk params must
        # never escape as TypeError tracebacks.
        with pytest.raises(ValueError):
            TransportSpec("lossy", {"loss": "abc"})
        with pytest.raises(ValueError):
            TransportSpec("latency", {"delay": [1, 2]})
        with pytest.raises(ValueError):
            TransportSpec("corrupting", {"rate": "high"})

    def test_huge_latency_seed_is_valid(self):
        spec = TransportSpec("latency", {"seed": 2**63, "jitter": 1.0})
        transport = spec.build()
        delay = transport.latency("a", "b", None)
        assert 0.0 <= delay < transport.delay + transport.jitter

    def test_build_returns_fresh_instances(self):
        spec = TransportSpec("lossy", {"loss": 0.5, "seed": 1})
        assert spec.build() is not spec.build()

    def test_build_transport_resolution(self):
        assert build_transport(None) is None
        assert isinstance(build_transport("latency"), LatencyTransport)
        assert isinstance(build_transport(TransportSpec("lossy")), LossyTransport)
        instance = ReliableTransport()
        assert build_transport(instance) is instance
        with pytest.raises(TypeError):
            build_transport(42)


class TestTransportOwnership:
    def test_unbound_transport_cannot_send(self):
        transport = ReliableTransport()
        with pytest.raises(RuntimeError, match="not bound"):
            transport.send("a", "b", "hi", lambda m: None)

    def test_bind_resets_fifo_state(self):
        transport = ReliableTransport(delay=1.0)
        sim = Simulator()
        transport.bind(sim)
        transport.send("a", "b", "x", lambda m: None)
        assert transport._last_delivery
        transport.bind(Simulator())
        assert not transport._last_delivery

    def test_rebinding_rewinds_counters_and_streams(self):
        """A transport instance reused across runs must reproduce a fresh
        run bit for bit: counters zeroed, seeded streams rewound."""
        transport = LossyTransport(loss=0.4, seed=7)

        def run() -> tuple:
            net = Network(transport=transport)
            net.register_all([Recorder("a"), Recorder("b")])
            for i in range(40):
                net.send("a", "b", i)
            net.run_until_quiescent()
            return (
                [m for _, m in net.process("b").received],
                transport.messages_dropped,
            )

        first = run()
        second = run()
        assert first == second
        assert 0 < len(first[0]) < 40


class TestDistanceLatencyTransport:
    def test_delay_grows_with_manhattan_distance(self):
        from repro.distsim.transport import DistanceLatencyTransport

        transport = DistanceLatencyTransport(delay=0.01, per_step=0.002)
        near = transport.latency((0, 0), (1, 0), "m")
        far = transport.latency((0, 0), (5, 5), "m")
        assert near == pytest.approx(0.012)
        assert far == pytest.approx(0.01 + 0.002 * 10)

    def test_non_lattice_identities_pay_only_the_floor(self):
        from repro.distsim.transport import DistanceLatencyTransport

        transport = DistanceLatencyTransport(delay=0.01, per_step=0.002)
        assert transport.latency("alice", "bob", "m") == pytest.approx(0.01)
        assert transport.latency((0, 0), "bob", "m") == pytest.approx(0.01)

    def test_pure_function_of_the_edge(self):
        from repro.distsim.transport import DistanceLatencyTransport

        transport = DistanceLatencyTransport()
        first = [transport.latency((0, 0), (3, 1), i) for i in range(5)]
        assert len(set(first)) == 1  # no stream state consumed

    def test_negative_parameters_rejected(self):
        from repro.distsim.transport import DistanceLatencyTransport

        with pytest.raises(ValueError):
            DistanceLatencyTransport(delay=-0.1)
        with pytest.raises(ValueError):
            DistanceLatencyTransport(per_step=-0.1)

    def test_spec_round_trip(self):
        spec = TransportSpec("distance-latency", {"delay": 0.02, "per_step": 0.001})
        restored = TransportSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert restored == spec
        assert restored.build().per_step == pytest.approx(0.001)


class TestRetransmitTransport:
    def _lossy_inner(self, loss=0.5, seed=1):
        return {"kind": "lossy", "params": {"loss": loss, "seed": seed}}

    def test_wraps_loss_down_to_the_power_of_attempts(self):
        from repro.distsim.transport import RetransmitTransport

        simulator = Simulator()
        transport = RetransmitTransport(
            inner=self._lossy_inner(loss=0.5, seed=3), retries=3, timeout=0.1
        ).bind(simulator)
        sends = 2000
        delivered = sum(
            0 if transport.drops("a", "b", i) else 1 for i in range(sends)
        )
        # End-to-end loss 0.5^4 = 6.25%; allow generous sampling slack.
        assert delivered / sends > 0.9

    def test_lost_attempts_charge_timeout_latency(self):
        from repro.distsim.transport import RetransmitTransport

        simulator = Simulator()
        transport = RetransmitTransport(
            inner=self._lossy_inner(loss=0.7, seed=5), retries=5, timeout=0.25
        ).bind(simulator)
        for message in range(50):
            if not transport.drops("a", "b", message):
                wait = transport.latency("a", "b", message)
                # Each lost attempt before success costs one timeout.
                assert wait == pytest.approx((wait // 0.25) * 0.25, abs=1e-9)
        assert transport.retransmissions > 0

    def test_reliable_inner_is_a_noop(self):
        from repro.distsim.transport import RetransmitTransport

        simulator = Simulator()
        transport = RetransmitTransport(retries=3, timeout=0.1).bind(simulator)
        assert not transport.drops("a", "b", "m")
        assert transport.latency("a", "b", "m") == 0.0
        assert transport.retransmissions == 0

    def test_bind_rewinds_the_inner_stream(self):
        from repro.distsim.transport import RetransmitTransport

        transport = RetransmitTransport(
            inner=self._lossy_inner(loss=0.5, seed=9), retries=1, timeout=0.1
        )
        first = [transport.bind(Simulator()).drops("a", "b", i) for i in range(64)]
        second = [transport.bind(Simulator()).drops("a", "b", i) for i in range(64)]
        assert first == second

    def test_invalid_parameters_rejected(self):
        from repro.distsim.transport import RetransmitTransport

        with pytest.raises(ValueError):
            RetransmitTransport(retries=-1)
        with pytest.raises(ValueError):
            RetransmitTransport(timeout=0.0)
        with pytest.raises(ValueError):
            TransportSpec("retransmit", {"retries": -2})

    def test_nested_spec_round_trip_and_hashability(self):
        spec = TransportSpec(
            "retransmit",
            {
                "inner": {"kind": "lossy", "params": {"loss": 0.3, "seed": 4}},
                "retries": 2,
                "timeout": 0.2,
            },
        )
        restored = TransportSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert restored == spec
        assert hash(restored) == hash(spec)
        built = restored.build()
        assert built.inner.kind == "lossy"

    def test_mutation_delegates_to_the_inner_transport(self):
        from repro.distsim.transport import RetransmitTransport

        simulator = Simulator()
        transport = RetransmitTransport(
            inner={"kind": "corrupting", "params": {"rate": 1.0, "seed": 2}},
            retries=0,
            timeout=0.1,
        ).bind(simulator)
        message = ReplyMessage(((0, 0), 1), (0, 0), True)
        mutated = transport.mutate("a", "b", message)
        assert isinstance(mutated, ReplyMessage)
        assert mutated != message


class TestEdgeKeyedStreams:
    """``stream="edge"``: draws keyed per edge, independent of interleaving.

    The global stream (the default, and the pre-split behavior byte for
    byte) consumes one generator in global send order, which couples every
    edge together; the edge stream derives each draw from ``(edge, purpose,
    seed, per-edge counter)`` so per-shard sub-fleets reproduce the
    single-process decisions exactly -- the property the multi-process
    parallel lockstep engine is built on.
    """

    EDGES = [("a", "b"), ("c", "d"), ((0, 0), (3, 1))]

    def test_shardable_flags(self):
        assert not LossyTransport().shardable
        assert LossyTransport(stream="edge").shardable
        assert not CorruptingTransport().shardable
        assert CorruptingTransport(stream="edge").shardable

    def test_invalid_stream_rejected(self):
        with pytest.raises(ValueError, match="stream"):
            LossyTransport(stream="per-edge")
        with pytest.raises(ValueError, match="stream"):
            CorruptingTransport(stream="shard")

    def _decisions(self, transport, schedule):
        """Run ``drops`` over (edge, count) bursts; return per-edge sequences."""
        out = {edge: [] for edge in self.EDGES}
        for edge, count in schedule:
            for _ in range(count):
                out[edge].append(transport.drops(edge[0], edge[1], None))
        return out

    def test_edge_stream_is_interleaving_independent(self):
        round_robin = [(edge, 1) for _ in range(10) for edge in self.EDGES]
        batched = [(edge, 10) for edge in self.EDGES]
        first = self._decisions(LossyTransport(loss=0.4, seed=9, stream="edge"), round_robin)
        second = self._decisions(LossyTransport(loss=0.4, seed=9, stream="edge"), batched)
        assert first == second
        assert any(any(seq) for seq in first.values())  # some drops happened

    def test_global_stream_couples_edges(self):
        round_robin = [(edge, 1) for _ in range(10) for edge in self.EDGES]
        batched = [(edge, 10) for edge in self.EDGES]
        first = self._decisions(LossyTransport(loss=0.4, seed=9), round_robin)
        second = self._decisions(LossyTransport(loss=0.4, seed=9), batched)
        assert first != second  # draws depend on the global send order

    def test_spec_round_trip_preserves_stream(self):
        spec = TransportSpec("lossy", {"loss": 0.2, "seed": 7, "stream": "edge"})
        restored = TransportSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert restored == spec
        assert restored.build().stream == "edge"
        assert restored.build().shardable
        corrupting = TransportSpec("corrupting", {"rate": 0.5, "stream": "edge"})
        assert corrupting.build().shardable

    def test_stream_state_round_trip(self):
        transport = LossyTransport(loss=0.4, seed=9, stream="edge")
        prefix = [(edge, 5) for edge in self.EDGES]
        self._decisions(transport, prefix)
        state = json.loads(json.dumps(transport.stream_state()))

        resumed = LossyTransport(loss=0.4, seed=9, stream="edge")
        resumed.restore_stream_state(state)
        tail = [(edge, 5) for edge in self.EDGES]
        assert self._decisions(resumed, tail) == self._decisions(transport, tail)

    def test_global_stream_state_is_none(self):
        assert LossyTransport().stream_state() is None
        assert CorruptingTransport().stream_state() is None

    def test_corrupting_edge_stream_interleaving_independent(self):
        tag = ((0, 0), 1)

        def mutations(order):
            transport = CorruptingTransport(rate=1.0, seed=4, stream="edge")
            transport.bind(Simulator())
            out = {}
            for edge in order:
                message = ReplyMessage(tag, (0, 0), True)
                out.setdefault(edge, []).append(
                    transport.mutate(edge[0], edge[1], message)
                )
            return out

        forward = mutations([("a", "b"), ("c", "d"), ("a", "b"), ("c", "d")])
        reversed_ = mutations([("c", "d"), ("c", "d"), ("a", "b"), ("a", "b")])
        assert forward == reversed_

    def test_corrupting_counter_skips_non_protocol_messages(self):
        transport = CorruptingTransport(rate=1.0, seed=4, stream="edge")
        transport.bind(Simulator())
        transport.mutate("a", "b", "heartbeat")
        assert transport.stream_state() == {"edge_counts": []}
        transport.mutate("a", "b", ReplyMessage(((0, 0), 1), (0, 0), True))
        assert transport.stream_state() == {"edge_counts": [[["a", "b"], 1]]}
