"""Tests for the shortest-path metric substrate on general graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.metric import GraphMetric


@pytest.fixture
def path_graph() -> GraphMetric:
    return GraphMetric(nx.path_graph(6))


@pytest.fixture
def grid_graph() -> GraphMetric:
    return GraphMetric(nx.grid_2d_graph(4, 4))


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            GraphMetric(nx.Graph())

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            GraphMetric(graph)

    def test_nodes_listed(self, path_graph):
        assert sorted(path_graph.nodes) == [0, 1, 2, 3, 4, 5]
        assert 3 in path_graph
        assert 99 not in path_graph


class TestDistances:
    def test_path_distances(self, path_graph):
        assert path_graph.distance(0, 5) == 5
        assert path_graph.distance(2, 2) == 0

    def test_unknown_source_raises(self, path_graph):
        with pytest.raises(KeyError):
            path_graph.distances_from(42)

    def test_grid_matches_manhattan(self, grid_graph):
        assert grid_graph.distance((0, 0), (3, 3)) == 6
        assert grid_graph.distance((1, 2), (2, 0)) == 3

    def test_weighted_edges(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=2.5)
        graph.add_edge("b", "c", weight=1.0)
        metric = GraphMetric(graph)
        assert metric.distance("a", "c") == pytest.approx(3.5)

    def test_symmetry(self, grid_graph):
        assert grid_graph.distance((0, 1), (3, 2)) == grid_graph.distance((3, 2), (0, 1))


class TestBallsAndNeighborhoods:
    def test_ball_radius_zero(self, path_graph):
        assert path_graph.ball(3, 0) == {3}

    def test_ball_radius_two_on_path(self, path_graph):
        assert path_graph.ball(3, 2) == {1, 2, 3, 4, 5}

    def test_negative_radius_rejected(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.ball(0, -1)

    def test_grid_ball_matches_lattice_ball(self, grid_graph):
        # Interior node of the 4x4 grid: radius-1 ball has 5 nodes.
        assert len(grid_graph.ball((1, 1), 1)) == 5

    def test_neighborhood_union(self, path_graph):
        assert path_graph.neighborhood([0, 5], 1) == {0, 1, 4, 5}
        assert path_graph.neighborhood_size([0, 5], 1) == 4

    def test_neighborhood_monotone(self, grid_graph):
        nodes = [(0, 0), (3, 3)]
        sizes = [grid_graph.neighborhood_size(nodes, r) for r in range(4)]
        assert sizes == sorted(sizes)

    def test_distance_to_set(self, path_graph):
        assert path_graph.distance_to_set(3, [0, 5]) == 2

    def test_eccentricity_and_diameter(self, path_graph):
        assert path_graph.eccentricity(0) == 5
        assert path_graph.eccentricity(3) == 3
        assert path_graph.diameter() == 5
