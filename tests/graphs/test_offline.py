"""Tests for the offline CMVRP characterization on general graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.demand import DemandMap
from repro.core.omega import omega_star_exhaustive
from repro.graphs.metric import GraphMetric
from repro.graphs.offline import (
    graph_bounds,
    graph_greedy_plan,
    graph_min_capacity,
    graph_omega_for_nodes,
    graph_omega_star,
)


@pytest.fixture
def path_metric() -> GraphMetric:
    return GraphMetric(nx.path_graph(12))


@pytest.fixture
def grid_metric() -> GraphMetric:
    return GraphMetric(nx.grid_2d_graph(5, 5))


@pytest.fixture
def star_metric() -> GraphMetric:
    # A hub with 8 leaves: the hub's demand can be served by all 9 vehicles
    # within distance 1, so omega is total / 9 once omega >= 1.
    return GraphMetric(nx.star_graph(8))


class TestGraphOmega:
    def test_empty_node_set_rejected(self, path_metric):
        with pytest.raises(ValueError):
            graph_omega_for_nodes(path_metric, {0: 1.0}, [])

    def test_zero_demand_region(self, path_metric):
        assert graph_omega_for_nodes(path_metric, {0: 5.0}, [7]) == 0.0

    def test_negative_demand_rejected(self, path_metric):
        with pytest.raises(ValueError):
            graph_omega_for_nodes(path_metric, {0: -1.0}, [0])

    def test_threshold_solution_on_star(self, star_metric):
        # Demand 9 at the hub: with omega = 1 all 9 nodes are within reach
        # and 1 * 9 = 9, so omega = 1 exactly.
        assert graph_omega_for_nodes(star_metric, {0: 9.0}, [0]) == pytest.approx(1.0)

    def test_large_demand_on_star_capped_by_node_count(self, star_metric):
        # Beyond radius 1 the star has no more nodes, so omega grows linearly
        # with the demand once all 9 nodes are in reach.
        value = graph_omega_for_nodes(star_metric, {0: 90.0}, [0])
        assert value == pytest.approx(10.0)

    def test_path_demand_spreads_along_line(self, path_metric):
        value = graph_omega_for_nodes(path_metric, {5: 6.0}, [5])
        # Radius 1 gives 3 vehicles: 2 * 3 >= 6 -> omega = 2 exactly.
        assert value == pytest.approx(2.0)

    def test_grid_graph_matches_lattice_solver(self, grid_metric):
        # The 5x5 grid graph with an interior demand reproduces the lattice
        # computation for radii that stay inside the grid.
        demand_nodes = {(2, 2): 5.0}
        graph_value = graph_omega_for_nodes(grid_metric, demand_nodes, [(2, 2)])
        lattice_value = omega_star_exhaustive(DemandMap({(2, 2): 5.0})).omega
        assert graph_value == pytest.approx(lattice_value)

    def test_omega_star_covers_pairs(self, path_metric):
        demand = {0: 4.0, 11: 4.0}
        star = graph_omega_star(path_metric, demand)
        singles = max(
            graph_omega_for_nodes(path_metric, demand, [0]),
            graph_omega_for_nodes(path_metric, demand, [11]),
        )
        assert star >= singles - 1e-9

    def test_omega_star_empty_demand(self, path_metric):
        assert graph_omega_star(path_metric, {}) == 0.0

    def test_omega_star_monotone_under_scaling(self, grid_metric):
        demand = {(0, 0): 3.0, (4, 4): 6.0}
        scaled = {node: 4 * value for node, value in demand.items()}
        assert graph_omega_star(grid_metric, scaled) >= graph_omega_star(
            grid_metric, demand
        )


class TestGraphTransportRelaxation:
    def test_agrees_with_omega_star_small(self, path_metric):
        demand = {3: 5.0, 8: 2.0}
        relaxation = graph_min_capacity(path_metric, demand, tolerance=1e-3)
        star = graph_omega_star(path_metric, demand)
        assert relaxation == pytest.approx(star, rel=2e-2)

    def test_agrees_on_star(self, star_metric):
        demand = {0: 18.0}
        relaxation = graph_min_capacity(star_metric, demand, tolerance=1e-3)
        assert relaxation == pytest.approx(2.0, rel=2e-2)

    def test_empty_demand(self, path_metric):
        assert graph_min_capacity(path_metric, {}) == 0.0


class TestGraphGreedyPlanAndBounds:
    def test_greedy_plan_covers_with_generous_capacity(self, grid_metric):
        demand = {(0, 0): 6.0, (2, 3): 4.0, (4, 4): 8.0}
        plan = graph_greedy_plan(grid_metric, demand, capacity=12.0)
        assert plan.covers(demand)
        assert plan.max_vehicle_energy() <= 12.0 + 1e-9

    def test_greedy_plan_fails_with_tiny_capacity(self, grid_metric):
        demand = {(0, 0): 50.0}
        plan = graph_greedy_plan(grid_metric, demand, capacity=1.0)
        assert not plan.covers(demand)

    def test_zero_capacity_empty_plan(self, path_metric):
        plan = graph_greedy_plan(path_metric, {0: 3.0}, capacity=0.0)
        assert plan.routes == {}

    def test_bounds_ordering(self, grid_metric):
        demand = {(1, 1): 9.0, (3, 3): 5.0}
        bounds = graph_bounds(grid_metric, demand, tolerance=0.05)
        assert bounds.omega_star <= bounds.greedy_capacity + 0.1
        assert bounds.transport_relaxation == pytest.approx(bounds.omega_star, rel=0.05)
        assert bounds.gap >= 1.0 - 1e-6

    def test_bounds_on_irregular_graph(self):
        # A "two villages + bridge" graph: dense cliques joined by a path.
        graph = nx.Graph()
        graph.add_edges_from(nx.complete_graph(5).edges)
        graph.add_edges_from((f"b{i}", f"b{i+1}") for i in range(4))
        graph.add_edge(0, "b0")
        mapping = {node: node for node in graph.nodes}
        metric = GraphMetric(graph)
        demand = {2: 10.0, "b4": 4.0}
        bounds = graph_bounds(metric, demand, tolerance=0.05)
        assert bounds.omega_star > 0
        assert bounds.greedy_capacity >= bounds.omega_star - 0.1

    def test_empty_demand_bounds(self, path_metric):
        bounds = graph_bounds(path_metric, {})
        assert bounds.omega_star == 0.0
        assert bounds.greedy_capacity == 0.0
