"""Tests for the chessboard coloring and black/white pairing (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.grid.coloring import Coloring, chessboard_color, pair_vertices
from repro.grid.lattice import Box, manhattan


class TestChessboardColor:
    def test_origin_is_black(self):
        assert chessboard_color((0, 0)) == "black"

    def test_adjacent_vertices_alternate(self):
        assert chessboard_color((0, 1)) == "white"
        assert chessboard_color((1, 0)) == "white"
        assert chessboard_color((1, 1)) == "black"

    def test_negative_coordinates(self):
        assert chessboard_color((-1, 0)) == "white"
        assert chessboard_color((-1, -1)) == "black"

    def test_three_dimensions(self):
        assert chessboard_color((1, 1, 1)) == "white"
        assert chessboard_color((1, 1, 0)) == "black"


class TestPairVertices:
    @pytest.mark.parametrize("side", [1, 2, 3, 4, 5])
    def test_pairs_cover_every_vertex_once(self, side):
        cube = Box.cube((0, 0), side)
        pairs = pair_vertices(cube)
        covered = [v for pair in pairs for v in pair.vertices()]
        assert sorted(covered) == sorted(cube.points())
        assert len(covered) == len(set(covered))

    @pytest.mark.parametrize("side", [2, 3, 4, 5])
    def test_paired_vertices_are_adjacent_and_opposite_colors(self, side):
        cube = Box.cube((0, 0), side)
        for pair in pair_vertices(cube):
            if pair.white is None:
                continue
            assert manhattan(pair.black, pair.white) == 1
            assert chessboard_color(pair.black) != chessboard_color(pair.white)

    def test_even_cube_has_no_singleton(self):
        pairs = pair_vertices(Box.cube((0, 0), 4))
        assert all(pair.white is not None for pair in pairs)
        assert len(pairs) == 8

    def test_odd_cube_has_exactly_one_singleton(self):
        pairs = pair_vertices(Box.cube((0, 0), 3))
        singletons = [pair for pair in pairs if pair.white is None]
        assert len(singletons) == 1
        assert len(pairs) == 5

    def test_single_vertex_cube(self):
        pairs = pair_vertices(Box.cube((7, 7), 1))
        assert len(pairs) == 1
        assert pairs[0].white is None
        assert pairs[0].black == (7, 7)

    def test_one_dimensional_cube(self):
        pairs = pair_vertices(Box((0,), (4,)))
        covered = [v for pair in pairs for v in pair.vertices()]
        assert sorted(covered) == [(0,), (1,), (2,), (3,), (4,)]

    def test_three_dimensional_cube(self):
        cube = Box.cube((0, 0, 0), 2)
        pairs = pair_vertices(cube)
        covered = [v for pair in pairs for v in pair.vertices()]
        assert sorted(covered) == sorted(cube.points())
        for pair in pairs:
            if pair.white is not None:
                assert manhattan(pair.black, pair.white) == 1

    def test_pair_membership(self):
        pairs = pair_vertices(Box.cube((0, 0), 2))
        pair = pairs[0]
        assert pair.black in pair
        if pair.white is not None:
            assert pair.white in pair
        assert (99, 99) not in pair


class TestColoring:
    def test_pair_of_every_vertex(self):
        cube = Box.cube((0, 0), 3)
        coloring = Coloring(cube)
        for vertex in cube.points():
            pair = coloring.pair_of(vertex)
            assert vertex in pair.vertices()

    def test_pair_of_outside_raises(self):
        coloring = Coloring(Box.cube((0, 0), 2))
        with pytest.raises(ValueError):
            coloring.pair_of((10, 10))

    def test_exactly_one_active_vehicle_per_pair(self):
        cube = Box.cube((0, 0), 4)
        coloring = Coloring(cube)
        active = [v for v in cube.points() if coloring.initially_active(v)]
        assert len(active) == coloring.num_pairs()
        # Every active vertex is the black vertex of its pair.
        for vertex in active:
            assert coloring.pair_of(vertex).black == vertex

    def test_serving_vertex_is_within_distance_one(self):
        cube = Box.cube((0, 0), 4)
        coloring = Coloring(cube)
        for vertex in cube.points():
            server = coloring.serving_vertex(vertex)
            assert manhattan(server, vertex) <= 1

    def test_num_pairs(self):
        assert Coloring(Box.cube((0, 0), 2)).num_pairs() == 2
        assert Coloring(Box.cube((0, 0), 3)).num_pairs() == 5
