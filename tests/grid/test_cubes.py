"""Tests for cube partitions and the Algorithm 1 coarsening pyramid."""

from __future__ import annotations

import pytest

from repro.grid.cubes import CoarseningPyramid, CubeGrid, cube_partition
from repro.grid.lattice import Box


class TestCubeGrid:
    def test_shape_exact_division(self):
        grid = CubeGrid(Box((0, 0), (7, 7)), 4)
        assert grid.shape == (2, 2)
        assert grid.num_cubes == 4

    def test_shape_with_remainder(self):
        grid = CubeGrid(Box((0, 0), (8, 5)), 4)
        assert grid.shape == (3, 2)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            CubeGrid(Box((0, 0), (3, 3)), 0)

    def test_cube_index_and_box_roundtrip(self):
        grid = CubeGrid(Box((0, 0), (7, 7)), 4)
        assert grid.cube_index((0, 0)) == (0, 0)
        assert grid.cube_index((4, 3)) == (1, 0)
        assert grid.cube_box((1, 0)) == Box((4, 0), (7, 3))

    def test_cube_index_outside_raises(self):
        grid = CubeGrid(Box((0, 0), (3, 3)), 2)
        with pytest.raises(ValueError):
            grid.cube_index((5, 0))

    def test_cube_box_index_out_of_range(self):
        grid = CubeGrid(Box((0, 0), (3, 3)), 2)
        with pytest.raises(ValueError):
            grid.cube_box((2, 0))

    def test_clipped_boundary_cube(self):
        grid = CubeGrid(Box((0, 0), (4, 4)), 3)
        assert grid.cube_box((1, 1)) == Box((3, 3), (4, 4))

    def test_every_point_in_its_cube(self):
        box = Box((0, 0), (6, 6))
        grid = CubeGrid(box, 3)
        for point in box.points():
            assert point in grid.cube_of(point)

    def test_cubes_cover_box_disjointly(self):
        box = Box((0, 0), (5, 5))
        grid = CubeGrid(box, 2)
        seen = set()
        for _, cube in grid.cubes():
            for point in cube.points():
                assert point not in seen
                seen.add(point)
        assert seen == set(box.points())

    def test_aggregate_demand(self):
        grid = CubeGrid(Box((0, 0), (3, 3)), 2)
        demand = {(0, 0): 2.0, (1, 1): 3.0, (3, 3): 1.0}
        totals = grid.aggregate_demand(demand)
        assert totals[(0, 0)] == 5.0
        assert totals[(1, 1)] == 1.0

    def test_aggregate_demand_outside_raises(self):
        grid = CubeGrid(Box((0, 0), (3, 3)), 2)
        with pytest.raises(ValueError):
            grid.aggregate_demand({(9, 9): 1.0})

    def test_max_cube_demand(self):
        grid = CubeGrid(Box((0, 0), (3, 3)), 2)
        assert grid.max_cube_demand({(0, 0): 2.0, (3, 3): 7.0}) == 7.0
        assert grid.max_cube_demand({}) == 0.0

    def test_cube_partition_helper(self):
        grid = cube_partition(Box((0, 0), (3, 3)), 2)
        assert isinstance(grid, CubeGrid)
        assert grid.side == 2

    def test_nonaligned_origin(self):
        grid = CubeGrid(Box((5, -3), (8, 0)), 2)
        assert grid.cube_index((5, -3)) == (0, 0)
        assert grid.cube_index((8, 0)) == (1, 1)


class TestCoarseningPyramid:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            CoarseningPyramid(Box((0, 0), (5, 5)), {})

    def test_requires_cubic_window(self):
        with pytest.raises(ValueError):
            CoarseningPyramid(Box((0, 0), (7, 3)), {})

    def test_demand_outside_raises(self):
        with pytest.raises(ValueError):
            CoarseningPyramid(Box((0, 0), (3, 3)), {(9, 9): 1.0})

    def test_base_level_is_raw_demand(self):
        demand = {(0, 0): 2.0, (3, 2): 4.0}
        pyramid = CoarseningPyramid(Box((0, 0), (3, 3)), demand)
        assert pyramid.levels[0] == {(0, 0): 2.0, (3, 2): 4.0}

    def test_coarsen_sums_children(self):
        demand = {(0, 0): 1.0, (1, 1): 2.0, (2, 2): 4.0, (3, 3): 8.0}
        pyramid = CoarseningPyramid(Box((0, 0), (3, 3)), demand)
        level2 = pyramid.level_for_side(2)
        assert level2 == {(0, 0): 3.0, (1, 1): 12.0}
        level4 = pyramid.level_for_side(4)
        assert level4 == {(0, 0): 15.0}

    def test_totals_preserved_across_levels(self):
        demand = {(x, y): float(x + y + 1) for x in range(8) for y in range(8)}
        pyramid = CoarseningPyramid(Box((0, 0), (7, 7)), demand)
        total = sum(demand.values())
        for side in (1, 2, 4, 8):
            assert sum(pyramid.level_for_side(side).values()) == pytest.approx(total)

    def test_max_cube_demand_nondecreasing_in_side(self):
        demand = {(x, y): float((x * 7 + y * 3) % 5) for x in range(8) for y in range(8)}
        pyramid = CoarseningPyramid(Box((0, 0), (7, 7)), demand)
        maxima = [pyramid.max_cube_demand(side) for side in (1, 2, 4, 8)]
        assert maxima == sorted(maxima)

    def test_coarsen_past_top_raises(self):
        pyramid = CoarseningPyramid(Box((0, 0), (1, 1)), {(0, 0): 1.0})
        pyramid.level_for_side(2)
        with pytest.raises(ValueError):
            pyramid.coarsen()

    def test_level_for_invalid_side(self):
        pyramid = CoarseningPyramid(Box((0, 0), (3, 3)), {(0, 0): 1.0})
        with pytest.raises(ValueError):
            pyramid.level_for_side(3)
        with pytest.raises(ValueError):
            pyramid.level_for_side(8)

    def test_offset_window(self):
        pyramid = CoarseningPyramid(Box((4, 4), (7, 7)), {(4, 4): 1.0, (7, 7): 2.0})
        assert pyramid.levels[0] == {(0, 0): 1.0, (3, 3): 2.0}

    def test_one_dimensional(self):
        pyramid = CoarseningPyramid(Box((0,), (7,)), {(0,): 1.0, (7,): 3.0})
        assert pyramid.level_for_side(8) == {(0,): 4.0}


class TestCubeHierarchy:
    def _hierarchy(self, side=1, n=8):
        from repro.grid.cubes import CubeHierarchy

        grid = CubeGrid(Box((0, 0), (n - 1, n - 1)), side)
        return CubeHierarchy(grid)

    def test_levels_cover_the_whole_partition(self):
        hierarchy = self._hierarchy(side=1, n=8)  # 8x8 base cubes
        assert hierarchy.levels == 3
        assert hierarchy.ancestor((7, 7), 3) == (0, 0)
        assert hierarchy.ancestor((7, 7), 0) == (7, 7)

    def test_single_cube_has_no_levels(self):
        hierarchy = self._hierarchy(side=8, n=8)
        assert hierarchy.levels == 0
        assert hierarchy.escalation_order((0, 0)) == []

    def test_children_partition_the_ancestor(self):
        hierarchy = self._hierarchy(side=1, n=8)
        children = hierarchy.children((3, 5), 1)
        assert children == [(2, 4), (2, 5), (3, 4), (3, 5)]

    def test_children_are_clipped_to_the_partition(self):
        hierarchy = self._hierarchy(side=1, n=6)  # 6x6 base cubes, L=3
        top = hierarchy.children((5, 5), hierarchy.levels)
        assert len(top) == 36  # all base cubes, not 8x8

    def test_escalation_rings_are_disjoint_and_exhaustive(self):
        hierarchy = self._hierarchy(side=1, n=8)
        index = (2, 6)
        rings = hierarchy.escalation_order(index)
        seen = {index}
        for ring in rings:
            assert ring == sorted(ring)  # deterministic lexicographic order
            for cube in ring:
                assert cube not in seen  # no overlaps between levels
                seen.add(cube)
        assert len(seen) == 64  # the union is the whole partition

    def test_sibling_ring_excludes_the_inner_ancestor(self):
        hierarchy = self._hierarchy(side=1, n=4)
        ring1 = hierarchy.siblings((0, 0), 1)
        assert ring1 == [(0, 1), (1, 0), (1, 1)]
        ring2 = hierarchy.siblings((0, 0), 2)
        assert (0, 1) not in ring2 and (1, 1) not in ring2
        assert len(ring2) == 12  # 16 base cubes minus the 4 of level 1

    def test_level_box_is_the_clipped_dyadic_block(self):
        from repro.grid.cubes import CubeHierarchy

        grid = CubeGrid(Box((0, 0), (5, 5)), 2)  # 3x3 cubes of side 2
        hierarchy = CubeHierarchy(grid)
        assert hierarchy.levels == 2
        assert hierarchy.level_box((0, 0), 1) == Box((0, 0), (3, 3))
        assert hierarchy.level_box((2, 2), 1) == Box((4, 4), (5, 5))  # clipped
        assert hierarchy.level_box((2, 2), 2) == Box((0, 0), (5, 5))

    def test_out_of_range_arguments_raise(self):
        hierarchy = self._hierarchy(side=1, n=4)
        with pytest.raises(ValueError):
            hierarchy.ancestor((4, 0), 1)
        with pytest.raises(ValueError):
            hierarchy.ancestor((0, 0), 5)
        with pytest.raises(ValueError):
            hierarchy.siblings((0, 0), 0)


class TestCubeBounds:
    """The batched corner computation must equal cube_box per index."""

    @pytest.mark.parametrize(
        "box, side",
        [
            (Box((0, 0), (9, 9)), 3),
            (Box((1, 2), (7, 11)), 4),  # clipped boundary cubes
            (Box((0,), (10,)), 3),
            (Box((0, 0, 0), (5, 6, 7)), 2),
        ],
    )
    def test_matches_cube_box(self, box, side):
        import itertools

        grid = CubeGrid(box, side)
        indices = list(itertools.product(*(range(c) for c in grid.shape)))
        los, his = grid.cube_bounds(indices)
        for i, index in enumerate(indices):
            cube = grid.cube_box(index)
            assert tuple(los[i]) == cube.lo
            assert tuple(his[i]) == cube.hi

    def test_rejects_bad_indices(self):
        grid = CubeGrid(Box((0, 0), (9, 9)), 3)
        with pytest.raises(ValueError):
            grid.cube_bounds([(0, 0, 0)])
        with pytest.raises(ValueError):
            grid.cube_bounds([(99, 0)])
