"""Tests for the lattice substrate: metric, balls, boxes, neighborhoods."""

from __future__ import annotations

import math

import pytest

from repro.grid.lattice import (
    Box,
    bounding_box,
    box_neighborhood_size,
    chebyshev,
    effective_radius,
    l1_ball,
    l1_ball_size,
    manhattan,
)


class TestManhattan:
    def test_basic_distance(self):
        assert manhattan((0, 0), (2, -3)) == 5

    def test_zero_distance(self):
        assert manhattan((4, 7, -1), (4, 7, -1)) == 0

    def test_symmetry(self):
        assert manhattan((1, 2), (5, -4)) == manhattan((5, -4), (1, 2))

    def test_one_dimension(self):
        assert manhattan((3,), (-2,)) == 5

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            manhattan((0, 0), (0, 0, 0))

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (3, 4), (-2, 7)
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


class TestChebyshev:
    def test_basic(self):
        assert chebyshev((0, 0), (2, -3)) == 3

    def test_le_manhattan(self):
        assert chebyshev((1, 5), (4, -2)) <= manhattan((1, 5), (4, -2))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            chebyshev((0,), (0, 0))


class TestEffectiveRadius:
    def test_floor(self):
        assert effective_radius(2.7) == 2

    def test_integer(self):
        assert effective_radius(3) == 3

    def test_zero(self):
        assert effective_radius(0.0) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            effective_radius(-0.1)


class TestL1Ball:
    def test_radius_zero(self):
        assert list(l1_ball((3, 4), 0)) == [(3, 4)]

    def test_radius_one_2d(self):
        points = set(l1_ball((0, 0), 1))
        assert points == {(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_radius_fractional_matches_floor(self):
        assert set(l1_ball((0, 0), 1.9)) == set(l1_ball((0, 0), 1))

    def test_size_matches_enumeration_2d(self):
        for radius in range(5):
            assert l1_ball_size(2, radius) == len(set(l1_ball((0, 0), radius)))

    def test_size_matches_enumeration_3d(self):
        for radius in range(4):
            assert l1_ball_size(3, radius) == len(set(l1_ball((0, 0, 0), radius)))

    def test_size_matches_enumeration_1d(self):
        for radius in range(6):
            assert l1_ball_size(1, radius) == 2 * radius + 1

    def test_known_2d_values(self):
        # |B_2(r)| = 2r^2 + 2r + 1 (centered squares).
        for radius in range(8):
            assert l1_ball_size(2, radius) == 2 * radius * radius + 2 * radius + 1

    def test_points_within_radius(self):
        center = (2, -1)
        for point in l1_ball(center, 3):
            assert manhattan(center, point) <= 3

    def test_deterministic_order(self):
        assert list(l1_ball((0, 0), 1)) == list(l1_ball((0, 0), 1))


class TestBox:
    def test_size_and_sides(self):
        box = Box((0, 0), (3, 1))
        assert box.side_lengths == (4, 2)
        assert box.size == 8

    def test_contains(self):
        box = Box((0, 0), (2, 2))
        assert (1, 2) in box
        assert (3, 0) not in box
        assert (0,) not in box  # wrong dimension

    def test_iteration_covers_all_points(self):
        box = Box((0, 0), (1, 2))
        assert sorted(box.points()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_empty_box_raises(self):
        with pytest.raises(ValueError):
            Box((1, 0), (0, 0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1,))

    def test_center_inside(self):
        box = Box((0, 0), (4, 6))
        assert box.center() in box

    def test_distance_to_inside_is_zero(self):
        box = Box((0, 0), (2, 2))
        assert box.distance_to((1, 1)) == 0

    def test_distance_to_outside(self):
        box = Box((0, 0), (2, 2))
        assert box.distance_to((4, 5)) == 2 + 3

    def test_expand(self):
        box = Box((0, 0), (1, 1))
        expanded = box.expand(2)
        assert expanded.lo == (-2, -2)
        assert expanded.hi == (3, 3)

    def test_intersect(self):
        a = Box((0, 0), (3, 3))
        b = Box((2, 2), (5, 5))
        inter = a.intersect(b)
        assert inter == Box((2, 2), (3, 3))

    def test_intersect_disjoint(self):
        a = Box((0, 0), (1, 1))
        b = Box((5, 5), (6, 6))
        assert a.intersect(b) is None

    def test_contains_box(self):
        outer = Box((0, 0), (5, 5))
        inner = Box((1, 1), (3, 3))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_cube_constructor(self):
        cube = Box.cube((1, 2), 3)
        assert cube.lo == (1, 2)
        assert cube.hi == (3, 4)
        assert cube.size == 9

    def test_cube_invalid_side(self):
        with pytest.raises(ValueError):
            Box.cube((0, 0), 0)

    def test_centered_cube(self):
        cube = Box.centered_cube((0, 0), 2)
        assert cube.lo == (-2, -2)
        assert cube.hi == (2, 2)
        assert cube.size == 25


class TestBoundingBox:
    def test_single_point(self):
        assert bounding_box([(3, 4)]) == Box((3, 4), (3, 4))

    def test_multiple_points(self):
        box = bounding_box([(0, 5), (3, 1), (-2, 2)])
        assert box == Box((-2, 1), (3, 5))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])


class TestBoxNeighborhoodSize:
    def test_single_point_box_matches_ball(self):
        box = Box((0, 0), (0, 0))
        for radius in range(5):
            assert box_neighborhood_size(box, radius) == l1_ball_size(2, radius)

    def test_radius_zero_is_box_size(self):
        box = Box((0, 0), (3, 2))
        assert box_neighborhood_size(box, 0) == box.size

    def test_matches_explicit_enumeration(self):
        from repro.grid.regions import neighborhood

        box = Box((0, 0), (2, 1))
        for radius in range(4):
            explicit = len(neighborhood(list(box.points()), radius))
            assert box_neighborhood_size(box, radius) == explicit

    def test_matches_explicit_enumeration_3d(self):
        from repro.grid.regions import neighborhood

        box = Box((0, 0, 0), (1, 1, 0))
        for radius in range(3):
            explicit = len(neighborhood(list(box.points()), radius))
            assert box_neighborhood_size(box, radius) == explicit

    def test_monotone_in_radius(self):
        box = Box((0, 0), (4, 4))
        sizes = [box_neighborhood_size(box, r) for r in range(6)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)  # strictly increasing

    def test_fractional_radius_floor(self):
        box = Box((0, 0), (1, 1))
        assert box_neighborhood_size(box, 2.9) == box_neighborhood_size(box, 2)
