"""Tests for finite regions and their L1 neighborhoods."""

from __future__ import annotations

import pytest

from repro.grid.lattice import Box, box_neighborhood_size
from repro.grid.regions import Region, neighborhood, neighborhood_size


class TestNeighborhoodFunction:
    def test_single_point_radius_one(self):
        assert sorted(neighborhood([(0, 0)], 1)) == [
            (-1, 0), (0, -1), (0, 0), (0, 1), (1, 0),
        ]

    def test_union_of_two_points(self):
        points = neighborhood([(0, 0), (10, 10)], 1)
        assert len(points) == 10  # two disjoint radius-1 balls

    def test_overlapping_balls_not_double_counted(self):
        points = neighborhood([(0, 0), (1, 0)], 1)
        assert len(points) == 8

    def test_empty_input(self):
        assert neighborhood([], 3) == set()

    def test_size_matches_set(self):
        pts = [(0, 0), (2, 2), (4, 0)]
        assert neighborhood_size(pts, 2) == len(neighborhood(pts, 2))


class TestRegion:
    def test_from_points_deduplicates(self):
        region = Region.from_points([(0, 0), (0, 0), (1, 1)])
        assert len(region) == 2

    def test_mixed_dimension_raises(self):
        with pytest.raises(ValueError):
            Region.from_points([(0, 0), (0, 0, 0)])

    def test_contains_and_iter_sorted(self):
        region = Region.from_points([(2, 2), (0, 0)])
        assert (0, 0) in region
        assert list(region) == [(0, 0), (2, 2)]

    def test_empty_region(self):
        region = Region.from_points([])
        assert region.is_empty()
        assert region.neighborhood_size(3) == 0
        with pytest.raises(ValueError):
            _ = region.dim

    def test_from_box_is_box(self):
        region = Region.from_box(Box((0, 0), (2, 2)))
        assert region.is_box()
        assert len(region) == 9

    def test_partial_box_is_not_box(self):
        region = Region.from_points([(0, 0), (2, 2)])
        assert not region.is_box()

    def test_neighborhood_size_box_uses_closed_form(self):
        box = Box((0, 0), (3, 2))
        region = Region.from_box(box)
        for radius in range(4):
            assert region.neighborhood_size(radius) == box_neighborhood_size(box, radius)

    def test_neighborhood_size_general_matches_enumeration(self):
        region = Region.from_points([(0, 0), (3, 1)])
        for radius in range(4):
            assert region.neighborhood_size(radius) == neighborhood_size(region.points, radius)

    def test_distance_to(self):
        region = Region.from_points([(0, 0), (5, 5)])
        assert region.distance_to((1, 1)) == 2
        assert region.distance_to((5, 5)) == 0

    def test_distance_to_empty_raises(self):
        with pytest.raises(ValueError):
            Region.from_points([]).distance_to((0, 0))

    def test_set_operations(self):
        a = Region.from_points([(0, 0), (1, 1)])
        b = Region.from_points([(1, 1), (2, 2)])
        assert len(a.union(b)) == 3
        assert len(a.intersection(b)) == 1
        assert len(a.difference(b)) == 1

    def test_translate(self):
        region = Region.from_points([(0, 0), (1, 2)])
        moved = region.translate((3, -1))
        assert set(moved.points) == {(3, -1), (4, 1)}

    def test_hashable(self):
        a = Region.from_points([(0, 0)])
        b = Region.from_points([(0, 0)])
        assert hash(a) == hash(b)
        assert a == b

    def test_bounding_box(self):
        region = Region.from_points([(0, 3), (2, 1)])
        assert region.bounding_box() == Box((0, 1), (2, 3))

    def test_neighborhood_monotone_in_radius(self):
        region = Region.from_points([(0, 0), (4, 4)])
        sizes = [region.neighborhood_size(r) for r in range(5)]
        assert sizes == sorted(sizes)
