"""Integration tests for Chapter 4 (broken vehicles).

The chapter's message is negative: with longevity parameters the LP lower
bound of Theorem 4.1.1 is no longer tight -- the Figure 4.1 instance needs
``Theta(r1^2)`` capacity while the LP bound stays at ``2 r1``.  These tests
execute the whole argument end to end: build the instance, compute the LP
bound, execute the only-surviving-vehicle shuttle, and check the widening
gap.  They also confirm that with all vehicles healthy the broken-model
bound degenerates to the Chapter 2 bound (no spurious gap).
"""

from __future__ import annotations

import pytest

from repro.core.broken import (
    LongevityMap,
    broken_lower_bound,
    figure41_actual_requirement,
    figure41_instance,
    figure41_lp_lower_bound,
    simulate_single_vehicle_shuttle,
)
from repro.core.omega import omega_star_exhaustive
from repro.core.demand import DemandMap


class TestFigure41EndToEnd:
    @pytest.mark.parametrize("r1", [2, 4, 8])
    def test_lp_bound_is_linear_in_r1(self, r1):
        instance = figure41_instance(r1, 4 * r1)
        assert figure41_lp_lower_bound(instance) == pytest.approx(2 * r1, rel=1e-6)

    @pytest.mark.parametrize("r1", [2, 4, 8])
    def test_actual_requirement_is_quadratic_in_r1(self, r1):
        instance = figure41_instance(r1, 4 * r1)
        simulated = simulate_single_vehicle_shuttle(instance.jobs, instance.point_k)
        assert simulated == pytest.approx(figure41_actual_requirement(r1))
        assert simulated >= 4 * r1 * r1 - 2 * r1  # Theta(r1^2)

    def test_gap_ratio_grows_linearly(self):
        ratios = {}
        for r1 in (2, 4, 8, 16):
            instance = figure41_instance(r1, 4 * r1)
            ratios[r1] = figure41_actual_requirement(r1) / figure41_lp_lower_bound(instance)
        # Doubling r1 roughly doubles the gap ratio.
        assert ratios[4] / ratios[2] == pytest.approx(2.0, rel=0.3)
        assert ratios[16] / ratios[8] == pytest.approx(2.0, rel=0.3)

    def test_breaking_vehicles_never_lowers_the_requirement(self):
        # Compared with the healthy-fleet bound for the same demand, the
        # broken-fleet bound can only be larger.
        instance = figure41_instance(3, 12)
        healthy_bound = omega_star_exhaustive(instance.demand).omega
        broken_bound = figure41_lp_lower_bound(instance)
        assert broken_bound >= healthy_bound - 1e-9


class TestHealthyFleetDegeneratesToChapter2:
    def test_all_healthy_bound_matches_unbroken_bound(self):
        demand = DemandMap({(0, 0): 5.0, (2, 0): 3.0, (1, 2): 4.0})
        healthy = LongevityMap(default=1.0)
        assert broken_lower_bound(demand, healthy) == pytest.approx(
            omega_star_exhaustive(demand).omega, rel=1e-6
        )

    def test_partial_breakage_interpolates(self):
        demand = DemandMap({(0, 0): 10.0})
        healthy = LongevityMap(default=1.0)
        half = LongevityMap(default=0.5)
        assert broken_lower_bound(demand, half) >= broken_lower_bound(demand, healthy) - 1e-9
