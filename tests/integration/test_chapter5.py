"""Integration tests for Chapter 5 (inter-vehicle energy transfers).

Two claims are reproduced end to end:

* Theorem 5.1.1: transfers do not change the order of the requirement --
  the transfer-aware lower bound and the no-transfer characterization stay
  within a constant factor of each other across demand scales.
* Section 5.2.1: with effectively unbounded tanks on a line, a collection
  schedule brings the requirement down to ``Theta(avg d)``; the executed
  schedule matches the closed forms for both accounting methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.omega import omega_star_cubes
from repro.core.transfer import (
    TransferAccounting,
    line_tank_requirement,
    simulate_line_collection,
    transfer_lower_bound,
)
from repro.workloads.generators import square_demand


def minimal_feasible_charge(demands, accounting, a1=0.0, a2=0.0) -> float:
    """Bisect for the smallest initial charge making the schedule feasible."""
    lo, hi = 0.0, max(1.0, max(demands))
    while not simulate_line_collection(
        demands, hi, accounting=accounting, a1=a1, a2=a2
    ).feasible:
        hi *= 2.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if simulate_line_collection(demands, mid, accounting=accounting, a1=a1, a2=a2).feasible:
            hi = mid
        else:
            lo = mid
    return hi


class TestTheorem511:
    @pytest.mark.parametrize("scale", [1.0, 4.0, 16.0, 64.0])
    def test_transfer_bound_same_order_as_offline(self, scale):
        demand = square_demand(6, 15.0 * scale)
        no_transfer = omega_star_cubes(demand).omega
        with_transfer = transfer_lower_bound(demand)
        assert with_transfer <= no_transfer + 1e-9  # transfers never hurt
        assert no_transfer <= 10 * with_transfer    # ... and help at most O(1)

    def test_ratio_stable_across_scales(self):
        ratios = []
        for scale in (1.0, 9.0, 81.0):
            demand = square_demand(6, 15.0 * scale)
            ratios.append(
                omega_star_cubes(demand).omega / transfer_lower_bound(demand)
            )
        assert max(ratios) / min(ratios) <= 3.0


class TestSection521:
    def test_fixed_cost_schedule_matches_closed_form(self):
        rng = np.random.default_rng(0)
        demands = list(rng.uniform(0.0, 20.0, size=16))
        a1 = 0.4
        simulated = minimal_feasible_charge(demands, TransferAccounting.FIXED, a1=a1)
        predicted = line_tank_requirement(demands, accounting=TransferAccounting.FIXED, a1=a1)
        assert simulated == pytest.approx(predicted, rel=0.05)

    def test_variable_cost_schedule_close_to_closed_form(self):
        rng = np.random.default_rng(1)
        demands = list(rng.uniform(0.0, 20.0, size=16))
        a2 = 0.05
        simulated = minimal_feasible_charge(demands, TransferAccounting.VARIABLE, a2=a2)
        predicted = line_tank_requirement(
            demands, accounting=TransferAccounting.VARIABLE, a2=a2
        )
        # The thesis's closed form approximates every transfer as moving W
        # units; the executed schedule agrees up to that approximation.
        assert simulated == pytest.approx(predicted, rel=0.25)

    def test_requirement_is_theta_of_average_not_maximum(self):
        # A single huge demand on a long line: without transfers the local
        # requirement is ~ the point bound of that demand; with collection it
        # collapses to about the average demand.
        demands = [0.0] * 31 + [310.0]
        average = sum(demands) / len(demands)
        simulated = minimal_feasible_charge(demands, TransferAccounting.FIXED, a1=0.2)
        assert simulated <= 3 * average + 5
        assert simulated >= average - 1e-6

    def test_scaling_with_average_demand(self):
        base = [10.0] * 20
        double = [20.0] * 20
        low = minimal_feasible_charge(base, TransferAccounting.FIXED, a1=0.3)
        high = minimal_feasible_charge(double, TransferAccounting.FIXED, a1=0.3)
        assert high / low == pytest.approx(2.0, rel=0.25)
