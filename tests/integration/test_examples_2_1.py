"""Integration tests reproducing the worked examples of Section 2.1.

Each example gives a closed-form lower bound (W1, W2, W3) from a simple
counting argument and an explicit strategy showing a matching upper bound
(up to small constants).  These tests check that the library's general
machinery (omega*, the constructive plan, the audits) reproduces both sides
and the scaling laws the thesis highlights (W -> d for large squares,
W2 ~ sqrt(d), W3 ~ d^(1/3)).
"""

from __future__ import annotations

import math

import pytest

from repro.core.feasibility import audit_plan
from repro.core.omega import (
    example_line_bound,
    example_point_bound,
    example_square_bound,
    omega_star_cubes,
)
from repro.core.plan import build_cube_plan
from repro.workloads.generators import line_demand, point_demand, square_demand


class TestExampleSquare:
    """Example 2.1.1 / Figure 2.1(a): demand d on an a x a square."""

    @pytest.mark.parametrize("side,per_point", [(4, 8.0), (6, 20.0), (8, 12.0)])
    def test_omega_star_between_w1_and_d(self, side, per_point):
        demand = square_demand(side, per_point)
        omega = omega_star_cubes(demand).omega
        w1 = example_square_bound(side, per_point)
        # The counting bound W1 is a lower bound on W (hence of the same
        # order as omega*); demand per point is an upper bound on omega*.
        assert omega >= w1 - 1e-9
        assert omega <= per_point + 1e-9

    def test_omega_approaches_d_as_square_grows(self):
        # The convergence W -> d needs a >> 2d, so use a small per-point
        # demand on a large square (a = 80, d = 4 gives W1 ~ 0.86 d).
        per_point = 4.0
        small = omega_star_cubes(square_demand(2, per_point)).omega
        large = omega_star_cubes(square_demand(80, per_point)).omega
        assert large >= small
        assert large >= 0.6 * per_point
        assert large <= per_point + 1e-9

    def test_w1_lower_bounds_any_feasible_plan(self):
        side, per_point = 5, 15.0
        demand = square_demand(side, per_point)
        plan = build_cube_plan(demand)
        assert audit_plan(plan, demand).feasible
        assert plan.max_vehicle_energy() >= example_square_bound(side, per_point) - 1e-9


class TestExampleLine:
    """Example 2.1.2 / Figures 2.1(b), 2.2: demand d on a line."""

    @pytest.mark.parametrize("per_point", [4.0, 12.0, 40.0])
    def test_omega_star_same_order_as_w2(self, per_point):
        # The cube-restricted maximum is within a constant of the subset
        # maximum (Corollary 2.2.6), and the subset maximum over the full
        # line is what matches W2, so the two agree up to small constants.
        demand = line_demand(40, per_point)
        omega = omega_star_cubes(demand).omega
        w2 = example_line_bound(per_point)
        assert omega >= w2 / 4
        # The explicit strategy of Figure 2.2 uses 2 * W2 per vehicle; our
        # audited plan stays within the general constant, so omega* cannot
        # exceed a small multiple of W2 either.
        assert omega <= 4 * w2 + 2

    def test_w2_scales_as_sqrt_of_demand(self):
        low = omega_star_cubes(line_demand(40, 10.0)).omega
        high = omega_star_cubes(line_demand(40, 40.0)).omega
        assert high / low == pytest.approx(2.0, rel=0.5)

    def test_figure_2_2_strategy_is_feasible(self):
        # Vehicles within W2 of the line move to it: the plan built by the
        # library must cover the demand with max energy O(W2).
        per_point = 25.0
        demand = line_demand(30, per_point)
        plan = build_cube_plan(demand)
        assert audit_plan(plan, demand).feasible
        w2 = example_line_bound(per_point)
        assert plan.max_vehicle_energy() <= 20 * w2 + 5


class TestExamplePoint:
    """Example 2.1.3 / Figures 2.1(c), 2.3: all demand at one point."""

    @pytest.mark.parametrize("total", [27.0, 125.0, 1000.0])
    def test_omega_star_same_order_as_w3(self, total):
        demand = point_demand(total)
        omega = omega_star_cubes(demand).omega
        w3 = example_point_bound(total)
        assert omega >= w3 - 1e-9
        assert omega <= 3 * w3 + 2

    def test_w3_scales_as_cube_root(self):
        low = example_point_bound(1000.0)
        high = example_point_bound(8000.0)
        assert high / low == pytest.approx(2.0, rel=0.05)

    def test_figure_2_3_strategy_is_feasible_with_3_w3(self):
        # The thesis serves the point with every vehicle of the
        # (2 W3 + 1)-square walking to it, using at most 3 W3 energy each.
        total = 343.0
        demand = point_demand(total)
        w3 = example_point_bound(total)
        plan = build_cube_plan(demand)
        assert audit_plan(plan, demand).feasible
        # The general construction is looser than the bespoke one, but it
        # must stay within a constant multiple of W3.
        assert plan.max_vehicle_energy() <= 20 * w3 + 5
