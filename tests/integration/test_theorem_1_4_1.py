"""Integration tests for Theorem 1.4.1 (the offline characterization).

Theorem 1.4.1 states ``W_off = Theta(max_T omega_T)``.  For every scenario
in the paper suite we verify the full audited sandwich

    omega*  <=  W_off(constructive plan)  <=  (2 * 3^l + l) * omega*

where the middle term is the maximum per-vehicle energy of an explicitly
audited feasible plan, and that Algorithm 1's estimate is consistent with
the sandwich.
"""

from __future__ import annotations

import math

import pytest

from repro.core.offline import algorithm1, offline_bounds, upper_bound_factor
from repro.grid.lattice import Box
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {s.name: s for s in paper_scenarios(random_window=12, random_jobs=200)}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestOfflineSandwich:
    def test_lower_bound_below_constructive_capacity(self, name):
        bounds = offline_bounds(SCENARIOS[name].demand)
        assert bounds.omega_star <= bounds.constructive_capacity + 1e-9

    def test_constructive_capacity_below_theory_upper_bound(self, name):
        bounds = offline_bounds(SCENARIOS[name].demand)
        assert bounds.constructive_capacity <= bounds.upper_bound + 1e-9

    def test_omega_c_is_also_a_lower_bound(self, name):
        bounds = offline_bounds(SCENARIOS[name].demand)
        assert bounds.omega_c <= bounds.omega_star + 1e-9

    def test_realized_constant_well_below_worst_case(self, name):
        bounds = offline_bounds(SCENARIOS[name].demand)
        assert bounds.sandwich_ratio <= upper_bound_factor(2)


class TestWorkedExampleReferences:
    def test_reference_bounds_are_lower_bounds(self):
        for name in ("square", "line", "point"):
            scenario = SCENARIOS[name]
            bounds = offline_bounds(scenario.demand)
            assert scenario.reference_bound is not None
            assert bounds.constructive_capacity >= scenario.reference_bound - 1e-6

    def test_reference_bounds_same_order_as_omega_star(self):
        for name in ("square", "line", "point"):
            scenario = SCENARIOS[name]
            bounds = offline_bounds(scenario.demand)
            ratio = bounds.omega_star / max(scenario.reference_bound, 1e-9)
            assert 0.2 <= ratio <= 5.0


class TestAlgorithm1Consistency:
    def _window_for(self, demand) -> Box:
        bbox = demand.bounding_box()
        extent = max(bbox.side_lengths)
        side = 1 << max(1, math.ceil(math.log2(extent)))
        return Box(bbox.lo, tuple(c + side - 1 for c in bbox.lo))

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_estimate_above_lower_bound(self, name):
        demand = SCENARIOS[name].demand
        window = self._window_for(demand)
        bounds = offline_bounds(demand, window=window)
        assert bounds.algorithm1_estimate is not None
        assert bounds.algorithm1_estimate >= bounds.omega_star - 1e-9

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_estimate_within_approximation_factor(self, name):
        demand = SCENARIOS[name].demand
        window = self._window_for(demand)
        result = algorithm1(demand, window)
        bounds = offline_bounds(demand)
        factor = upper_bound_factor(2)
        # Algorithm 1 is a 2 * (2*3^l + l)-approximation of W_off; since
        # W_off <= constructive capacity, the estimate can exceed the lower
        # bound by at most twice the factor (plus the doubling granularity).
        assert result.estimate <= 2 * factor * max(bounds.constructive_capacity, 1.0) + factor
