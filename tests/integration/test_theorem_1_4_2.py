"""Integration tests for Theorem 1.4.2 (the online bound).

Theorem 1.4.2 states ``W_on = Theta(W_off)``: the decentralized strategy of
Chapter 3 serves every job with per-vehicle capacity
``(4 * 3^l + l) * omega_c``.  We run the actual message-passing protocol on
the paper scenarios and verify (a) every job is served within the theorem's
capacity, (b) the measured per-vehicle energy stays within the analytic
constant of the offline lower bound, and (c) replacements really occur when
capacities are tight (the protocol is exercised, not bypassed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.online import run_online
from repro.workloads.arrivals import random_arrivals
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {
    s.name: s
    for s in paper_scenarios(
        square_side=5,
        square_per_point=6.0,
        line_length=12,
        line_per_point=5.0,
        point_total=60.0,
        random_window=8,
        random_jobs=80,
    )
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestOnlineFeasibility:
    def test_all_jobs_served_with_theorem_capacity(self, name):
        demand = SCENARIOS[name].demand
        jobs = random_arrivals(demand, np.random.default_rng(17))
        result = run_online(jobs)
        assert result.feasible
        assert result.jobs_served == result.jobs_total

    def test_capacity_never_exceeded(self, name):
        demand = SCENARIOS[name].demand
        jobs = random_arrivals(demand, np.random.default_rng(17))
        result = run_online(jobs)
        assert result.max_vehicle_energy <= result.capacity + 1e-9

    def test_online_within_analytic_constant_of_offline(self, name):
        demand = SCENARIOS[name].demand
        jobs = random_arrivals(demand, np.random.default_rng(17))
        result = run_online(jobs)
        factor = online_upper_bound_factor(2)
        assert result.max_vehicle_energy <= factor * max(result.omega, result.omega_star) + 1e-9


class TestProtocolIsExercised:
    def test_replacements_occur_under_tight_capacity(self):
        jobs = JobSequence.from_positions([(0, 0)] * 24)
        result = run_online(jobs, omega=3.0, capacity=8.0)
        assert result.feasible
        assert result.replacements >= 2
        assert result.searches >= result.replacements
        assert result.messages > 0

    def test_online_cost_exceeds_offline_for_adversarial_order(self):
        # Online never beats offline: the per-vehicle energy measured online
        # is at least the offline lower bound omega*.
        demand = SCENARIOS["square"].demand
        jobs = random_arrivals(demand, np.random.default_rng(3))
        result = run_online(jobs)
        assert result.max_vehicle_energy >= result.omega_star - 1e-9

    def test_arrival_order_does_not_change_feasibility(self):
        demand = SCENARIOS["zipf"].demand
        for seed in (0, 1, 2):
            jobs = random_arrivals(demand, np.random.default_rng(seed))
            assert run_online(jobs).feasible
