"""The atomic-write helper: a reader never observes a torn file."""

import json
import os
import threading

import pytest

from repro.io.atomic import atomic_write_json, atomic_write_text


def test_writes_text(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text("hello", target)
    assert target.read_text() == "hello"


def test_overwrites_existing(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("old")
    atomic_write_text("new", target)
    assert target.read_text() == "new"


def test_json_sorted_and_stable(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_json({"b": 2, "a": 1}, target)
    first = target.read_bytes()
    atomic_write_json({"a": 1, "b": 2}, target)
    assert target.read_bytes() == first
    assert json.loads(first) == {"a": 1, "b": 2}


def test_no_temp_file_left_behind(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_json({"k": "v"}, target)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]


def test_failure_leaves_destination_untouched(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_text("intact", target)

    class Unserializable:
        pass

    with pytest.raises(TypeError):
        atomic_write_json({"bad": Unserializable()}, target)
    assert target.read_text() == "intact"
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]


def test_reader_never_sees_torn_file(tmp_path):
    """Hammer the file with rewrites while a reader polls it.

    Every observed content must be one of the complete payloads -- a
    prefix/suffix mix of two writes (a torn read) fails the test.  This is
    the contract the live-state store and checkpoint writer rely on.
    """
    target = tmp_path / "state.json"
    payloads = [json.dumps({"gen": gen, "fill": "x" * 4096}) for gen in range(50)]
    atomic_write_text(payloads[0], target)
    complete = set(payloads)
    torn = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            try:
                content = target.read_text()
            except FileNotFoundError:  # pragma: no cover - rename is atomic
                torn.append("<missing>")
                continue
            if content not in complete:
                torn.append(content[:80])

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for payload in payloads[1:]:
            atomic_write_text(payload, target)
    finally:
        stop.set()
        thread.join()
    assert torn == []
    assert target.read_text() == payloads[-1]


def test_relative_path_without_directory(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    atomic_write_text("cwd write", "plain.txt")
    assert (tmp_path / "plain.txt").read_text() == "cwd write"
    assert os.listdir(tmp_path) == ["plain.txt"]
