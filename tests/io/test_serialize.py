"""Tests for the JSON serialization round-trips."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap, JobSequence
from repro.core.plan import build_cube_plan
from repro.io.serialize import (
    demand_from_json,
    demand_to_json,
    jobs_from_json,
    jobs_to_json,
    load_json,
    plan_from_json,
    plan_to_json,
    save_json,
)
from repro.workloads.generators import square_demand


class TestDemandRoundTrip:
    def test_round_trip(self):
        demand = DemandMap({(0, 0): 2.5, (3, -1): 4.0})
        assert demand_from_json(demand_to_json(demand)) == demand

    def test_empty_round_trip(self):
        demand = DemandMap({}, dim=3)
        restored = demand_from_json(demand_to_json(demand))
        assert restored.is_empty()
        assert restored.dim == 3

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(ValueError):
            demand_from_json({"type": "something_else"})


class TestJobsRoundTrip:
    def test_round_trip(self):
        jobs = JobSequence.from_positions([(0, 0), (1, 2), (0, 0)])
        restored = jobs_from_json(jobs_to_json(jobs))
        assert restored.positions() == jobs.positions()
        assert [j.time for j in restored] == [j.time for j in jobs]

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(ValueError):
            jobs_from_json({"type": "demand_map"})


class TestPlanRoundTrip:
    def test_round_trip_preserves_energy_accounting(self):
        demand = square_demand(3, 6.0)
        plan = build_cube_plan(demand)
        restored = plan_from_json(plan_to_json(plan))
        assert restored.max_vehicle_energy() == pytest.approx(plan.max_vehicle_energy())
        assert restored.total_energy() == pytest.approx(plan.total_energy())
        assert restored.served_by_position() == plan.served_by_position()
        assert restored.metadata == plan.metadata

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(ValueError):
            plan_from_json({"type": "job_sequence"})


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        demand = DemandMap({(1, 1): 3.0})
        path = tmp_path / "demand.json"
        save_json(demand_to_json(demand), path)
        assert demand_from_json(load_json(path)) == demand
