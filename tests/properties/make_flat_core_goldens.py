#!/usr/bin/env python
"""Regenerate the flat-core byte-identity goldens.

The goldens pin the *observable protocol behavior* of the online strategy
-- one blake2b hash of each run's canonical ``RunResult`` JSON -- across
every scenario family x {plain, monitoring, escalation, lossy transport}.
They were captured on the loop-based fleet core immediately before the
flat-array refactor, so ``tests/properties/test_flat_core_differential.py``
is a machine-checkable statement that the vectorized construction, the
indexed registry, and the batched dispatch fast path changed *nothing* the
protocol can observe.

Regenerate (only after a deliberate, understood behavior change)::

    PYTHONPATH=src python tests/properties/make_flat_core_goldens.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.api import ExperimentEngine
from repro.workloads.library import available_families, family_config

GOLDEN_PATH = Path(__file__).parent / "data" / "flat_core_goldens.json"

SEED = 1
PRESET = "small"

#: (label, solver, family_config keyword overrides) -- the protocol modes the
#: goldens cover.  ``online-broken`` runs the monitoring loop against the
#: family's own failure plan; ``escalation`` widens searches through the cube
#: hierarchy; ``lossy`` runs the seeded-loss transport.
MODES = (
    ("plain", "online", {}),
    ("monitoring", "online-broken", {}),
    ("escalation", "online", {"escalation": True}),
    ("lossy", "online", {"transport": {"kind": "lossy", "params": {"loss": 0.05, "seed": 3}}}),
)


def golden_matrix() -> dict:
    engine = ExperimentEngine()
    goldens = {}
    for family in sorted(available_families()):
        for label, solver, overrides in MODES:
            config = family_config(family, solver, seed=SEED, preset=PRESET, **overrides)
            result = engine.run(config)
            digest = hashlib.blake2b(
                result.canonical_json().encode("utf-8"), digest_size=16
            ).hexdigest()
            goldens[f"{family}/{label}"] = digest
    return goldens


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden_matrix(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(json.loads(GOLDEN_PATH.read_text()))} goldens -> {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
