"""Differential suite: every scenario family x every registered solver.

No golden values: correctness is pinned by *relations* that must hold
between solvers on the same workload --

* every pair runs to completion with internally consistent numbers,
* all solvers agree on the offline lower bound ``omega*`` of a workload,
* any feasible CMVRP-model run costs at least the offline bound
  (``max_vehicle_energy >= omega*``),
* feasibility is monotone under added capacity,
* ``omega*`` itself is monotone under added demand.

The whole family x solver matrix is solved once (CI-scale presets) and
shared across the assertions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import BUILTIN_SOLVERS, ExperimentEngine, RunResult
from repro.core.omega import omega_star_cubes
from repro.workloads.library import (
    available_families,
    build_family_demand,
    family_config,
    get_family,
)

SEED = 1
FAMILIES = sorted(available_families())
SOLVERS = list(BUILTIN_SOLVERS)

#: Solvers whose objective lives in the thesis's model (one vehicle per
#: lattice vertex, min-max per-vehicle energy), for which ``omega*`` is a
#: true lower bound on any feasible execution.  The depot-based baselines
#: (cvrp/tsp/transportation) answer a different question.
CMVRP_SOLVERS = ("offline", "online", "online-broken", "greedy")

RELATIVE_TOLERANCE = 1e-6


def _small_params(family: str) -> dict:
    return get_family(family).params(preset="small")


@pytest.fixture(scope="module")
def matrix_results():
    """One solved family x solver matrix, shared by every test in the module."""
    engine = ExperimentEngine()
    results = {}
    for family in FAMILIES:
        for solver in SOLVERS:
            config = family_config(family, solver, seed=SEED, preset="small")
            results[(family, solver)] = engine.run(config)
    return results


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("solver", SOLVERS)
class TestEveryPairRuns:
    def test_result_is_internally_consistent(self, matrix_results, family, solver):
        result: RunResult = matrix_results[(family, solver)]
        assert result.solver == solver
        assert result.scenario == family
        assert 0 <= result.jobs_served <= result.jobs_total
        assert result.jobs_total > 0
        for value in (
            result.omega_star,
            result.max_vehicle_energy,
            result.total_energy,
            result.objective,
        ):
            assert math.isfinite(value)
            assert value >= 0.0
        if result.capacity is not None:
            assert result.capacity > 0

    def test_feasibility_matches_served_count(self, matrix_results, family, solver):
        result: RunResult = matrix_results[(family, solver)]
        assert result.feasible == (result.jobs_served == result.jobs_total)


@pytest.mark.parametrize("family", FAMILIES)
class TestCrossSolverInvariants:
    def test_omega_star_agrees_across_all_solvers(self, matrix_results, family):
        values = {
            solver: matrix_results[(family, solver)].omega_star for solver in SOLVERS
        }
        reference = values["offline"]
        assert reference > 0
        for solver, value in values.items():
            assert value == pytest.approx(reference, rel=RELATIVE_TOLERANCE), solver

    def test_feasible_cmvrp_runs_cost_at_least_the_offline_bound(
        self, matrix_results, family
    ):
        for solver in CMVRP_SOLVERS:
            result = matrix_results[(family, solver)]
            if not result.feasible:
                continue
            floor = result.omega_star * (1.0 - RELATIVE_TOLERANCE)
            assert result.max_vehicle_energy >= floor, solver

    def test_offline_bound_sandwich_holds(self, matrix_results, family):
        result = matrix_results[(family, "offline")]
        assert result.feasible
        upper = result.extra("upper_bound")
        assert upper is not None
        assert result.omega_star * (1.0 - RELATIVE_TOLERANCE) <= result.capacity
        assert result.capacity <= upper * (1.0 + RELATIVE_TOLERANCE)


@pytest.mark.parametrize("family", FAMILIES)
class TestMonotonicity:
    def test_online_feasibility_is_monotone_under_added_capacity(
        self, matrix_results, family
    ):
        """A feasible provisioning stays feasible (and serves no fewer jobs)
        when every battery is doubled."""
        base = matrix_results[(family, "online")]
        provisioned = base.capacity
        assert provisioned is not None and provisioned > 0
        engine = ExperimentEngine()
        doubled = engine.run(
            family_config(
                family, "online", seed=SEED, preset="small", capacity=2.0 * provisioned
            )
        )
        if base.feasible:
            assert doubled.feasible
        assert doubled.jobs_served >= base.jobs_served

    def test_omega_star_is_monotone_under_added_demand(self, family):
        demand = build_family_demand(family, _small_params(family), seed=SEED)
        base = omega_star_cubes(demand).omega
        scaled = omega_star_cubes(demand.scaled(2.0)).omega
        assert scaled >= base * (1.0 - RELATIVE_TOLERANCE)
        extra = build_family_demand(family, _small_params(family), seed=SEED + 1)
        merged = omega_star_cubes(demand.merged_with(extra)).omega
        assert merged >= base * (1.0 - RELATIVE_TOLERANCE)


class TestFamilyRegistryContract:
    def test_at_least_eight_families_are_registered(self):
        assert len(FAMILIES) >= 8

    def test_family_demands_are_deterministic_per_seed(self):
        for family in FAMILIES:
            a = build_family_demand(family, _small_params(family), seed=SEED)
            b = build_family_demand(family, _small_params(family), seed=SEED)
            assert a.as_dict() == b.as_dict()

    def test_failure_families_have_failure_specs(self):
        from repro.workloads.library import build_family_failures

        tagged = [f for f in FAMILIES if "failures" in get_family(f).tags]
        assert tagged  # the library must include adversarial failure families
        for family in tagged:
            spec = build_family_failures(family, _small_params(family), seed=SEED)
            assert spec is not None and not spec.is_empty()

    def test_family_configs_round_trip_through_json(self):
        import json

        from repro.api import RunConfig

        for family in FAMILIES:
            for solver in ("offline", "online-broken"):
                config = family_config(family, solver, seed=SEED, preset="small")
                payload = json.loads(json.dumps(config.to_json()))
                restored = RunConfig.from_json(payload)
                assert restored == config
                assert restored.config_hash() == config.config_hash()
