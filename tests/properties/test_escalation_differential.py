"""The differential suite's escalation axis.

Three relations pin the cross-cube escalation layer, with no goldens:

* **recovery in the omega_c < 1 regime** -- on every spread-demand
  scenario whose natural partition is singleton cubes (``omega_c < 1``,
  verified per scenario), a run with dead vehicles abandons jobs under the
  intra-cube protocol but reaches *full* job service with escalation on;
* **worker-count determinism** -- escalated runs are byte-identical
  across 1 thread, 4 threads, and 4 processes (the new messages, ring
  state, and adoption bookkeeping must all be free of ambient state);
* **driver equivalence** -- with escalation enabled and no failures, the
  ``engine="rounds"`` adapter still reproduces the event driver exactly,
  and enabling escalation on a failure-free intra-cube run changes no
  physical outcome at all (escalation only ever fires when a cube search
  exhausts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import escalation_capacity_bound
from repro.api import ExperimentEngine, FailureSpec, RunConfig, ScenarioSpec
from repro.core.demand import DemandMap
from repro.core.omega import omega_c
from repro.core.online import run_online
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import random_arrivals
from repro.workloads.generators import square_demand
from repro.workloads.library import family_spec


def _spread(side: int, stride: int, per_point: float) -> DemandMap:
    return DemandMap(
        {
            (stride * x, stride * y): per_point
            for x in range(side)
            for y in range(side)
        }
    )


#: The omega_c < 1 scenario axis: (name, demand, dead vehicles).  Each
#: demand is spread thin enough that the natural cube partition degenerates
#: to singletons -- the regime where the intra-cube protocol has no
#: replacement path at all.
SPARSE_SCENARIOS = [
    ("spread-3x3", _spread(3, 3, 2.0), [(0, 0)]),
    ("spread-4x4", _spread(4, 4, 1.0), [(0, 0), (4, 4)]),
    ("spread-line", DemandMap({(5 * x, 0): 2.0 for x in range(5)}), [(5, 0)]),
]


def _sparse_config(name, demand, dead, *, escalation):
    return RunConfig(
        solver="online-broken",
        scenario=ScenarioSpec.from_demand(demand, name=name, order="sequential"),
        # Provisioned from the escalation-aware Lemma 3.3.1 bound instead
        # of a hand-tuned constant: growing a scenario grows its battery.
        capacity=escalation_capacity_bound(demand),
        failures=FailureSpec(crashed=tuple(dead)),
        escalation=escalation,
        recovery_rounds=6,
    )


@pytest.mark.parametrize(
    "name,demand,dead", SPARSE_SCENARIOS, ids=[s[0] for s in SPARSE_SCENARIOS]
)
class TestSparseRegimeRecovery:
    def test_scenario_really_is_singleton_cube(self, name, demand, dead):
        assert omega_c(demand) < 1.0

    def test_intra_cube_abandons_jobs(self, name, demand, dead):
        result = ExperimentEngine().run(
            _sparse_config(name, demand, dead, escalation=False)
        )
        assert result.jobs_served < result.jobs_total

    def test_escalation_reaches_full_service(self, name, demand, dead):
        result = ExperimentEngine().run(
            _sparse_config(name, demand, dead, escalation=True)
        )
        assert result.feasible
        assert result.jobs_served == result.jobs_total
        assert int(result.extra("escalations", 0)) >= 1


class TestEscalationWorkerDeterminism:
    def _configs(self):
        return [
            _sparse_config(name, demand, dead, escalation=True)
            for name, demand, dead in SPARSE_SCENARIOS
        ]

    @pytest.fixture(scope="class")
    def serial_payload(self) -> str:
        engine = ExperimentEngine(workers=1)
        return engine.results_payload(engine.run_many(self._configs()))

    def test_four_threads_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload

    def test_four_processes_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4, use_processes=True)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload

    def test_rerun_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=1)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload


def _fingerprint(result):
    return (
        result.jobs_served,
        result.feasible,
        result.max_vehicle_energy,
        result.total_travel,
        result.total_service,
        result.replacements,
        result.searches,
        result.messages,
        tuple(sorted(result.vehicle_energies.items())),
    )


class TestDriverEquivalenceWithEscalation:
    @pytest.mark.parametrize("family", ["hotspot", "scale-up", "mobility"])
    def test_rounds_equals_events_failure_free(self, family):
        jobs = family_spec(family, seed=1, preset="small").jobs()
        results = {
            engine: run_online(
                jobs,
                capacity="theorem",
                config=FleetConfig(monitoring=True, escalation=True),
                engine=engine,
            )
            for engine in ("rounds", "events")
        }
        assert _fingerprint(results["rounds"]) == _fingerprint(results["events"])

    def test_escalation_is_inert_on_failure_free_intra_cube_runs(self):
        """With healthy vehicles and theorem provisioning no search ever
        exhausts its cube, so enabling escalation must not change the
        physical outcome of a classical intra-cube run."""
        jobs = random_arrivals(square_demand(5, 3.0), np.random.default_rng(0))
        off = run_online(jobs, config=FleetConfig(monitoring=False))
        on = run_online(
            jobs, config=FleetConfig(monitoring=False, escalation=True)
        )
        assert _fingerprint(off) == _fingerprint(on)
        assert on.escalations == 0
