"""Byte-identity differential suite for the flat-array fleet core.

The flat core (vectorized construction, indexed registry, batched
dispatch) must change *nothing* the protocol can observe.  The goldens in
``data/flat_core_goldens.json`` are blake2b hashes of the canonical
``RunResult`` JSON of every scenario family x {plain, monitoring,
escalation, lossy transport}, captured on the loop-based implementation
immediately before the refactor; this suite asserts the current code
reproduces every one of them bit for bit, and that the 10^3-vehicle
scale-up preset stays byte-identical across worker pools (1 thread == 4
threads == 4 processes).

Regenerate the goldens (only after a deliberate, understood behavior
change) with ``PYTHONPATH=src python tests/properties/make_flat_core_goldens.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.api import ExperimentEngine, RunConfig, ScenarioSpec
from repro.vehicles.registry import WATCH_NEVER, WATCH_NONE
from repro.workloads.library import family_config

GOLDEN_PATH = Path(__file__).parent / "data" / "flat_core_goldens.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

SEED = 1
PRESET = "small"

#: Must mirror tests/properties/make_flat_core_goldens.py exactly.
MODES = {
    "plain": ("online", {}),
    "monitoring": ("online-broken", {}),
    "escalation": ("online", {"escalation": True}),
    "lossy": (
        "online",
        {"transport": {"kind": "lossy", "params": {"loss": 0.05, "seed": 3}}},
    ),
}


def _digest(result) -> str:
    return hashlib.blake2b(
        result.canonical_json().encode("utf-8"), digest_size=16
    ).hexdigest()


def _assert_active_set_invariants(fleet) -> None:
    """The incremental engaged set / watch mirror equal ground truth.

    The registry's ``engaged`` set and ``watch_heard`` array are maintained
    incrementally at every protocol transition; after a full run they must
    equal what a from-scratch recomputation off the vehicle objects gives
    -- any drift means the quiescent fast path skipped (or re-visited) a
    vehicle the per-object protocol would have handled differently.
    """
    flat = fleet.flat
    expected = {
        vehicle._index
        for vehicle in fleet.vehicles.values()
        if (
            vehicle._engaged_tag is not None
            or vehicle.escalations
            or vehicle._engaged_rounds
            or vehicle._engaged_tag_seen is not None
        )
    }
    assert flat.engaged == expected, "incremental engaged set drifted"
    for vehicle in fleet.vehicles.values():
        monitored = vehicle._monitored_pair
        heard = flat.watch_heard[vehicle._index]
        if monitored is None:
            assert heard == WATCH_NONE
        else:
            assert heard == vehicle.last_heard.get(monitored, WATCH_NEVER)


@pytest.fixture(scope="module")
def engine():
    return ExperimentEngine()


@pytest.fixture
def captured_fleets(monkeypatch):
    """Record every fleet ``run_online`` provisions during the test."""
    import repro.core.online as online

    fleets = []
    original = online.provision_fleet

    def wrapper(*args, **kwargs):
        out = original(*args, **kwargs)
        fleets.append(out[0])
        return out

    monkeypatch.setattr(online, "provision_fleet", wrapper)
    return fleets


class TestGoldenByteIdentity:
    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_matches_pre_refactor_golden(self, key, engine, captured_fleets):
        family, label = key.rsplit("/", 1)
        solver, overrides = MODES[label]
        config = family_config(family, solver, seed=SEED, preset=PRESET, **overrides)
        assert _digest(engine.run(config)) == GOLDENS[key], (
            f"{key}: the flat-array core diverged from the pre-refactor "
            "protocol behavior"
        )
        assert captured_fleets, "run_online never provisioned a fleet"
        for fleet in captured_fleets:
            _assert_active_set_invariants(fleet)

    def test_goldens_cover_every_family_and_mode(self):
        from repro.workloads.library import available_families

        expected = {
            f"{family}/{label}"
            for family in available_families()
            for label in MODES
        }
        assert set(GOLDENS) == expected


class TestScaleUpWorkerDeterminism:
    """1 thread == 4 threads == 4 processes on the 10^3-vehicle preset."""

    @staticmethod
    def _configs():
        spec = ScenarioSpec.from_family("scale-up", seed=0, side=32, per_point=2.0)
        return [
            RunConfig(solver="online", scenario=spec, capacity="theorem"),
            RunConfig(solver="online", scenario=spec, capacity="theorem", escalation=True),
        ]

    @pytest.fixture(scope="class")
    def serial_payload(self):
        engine = ExperimentEngine(workers=1)
        return engine.results_payload(engine.run_many(self._configs()))

    def test_four_threads_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload

    def test_four_processes_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4, use_processes=True)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload
