"""The differential suite's gossip-monitoring axis.

Three relations pin the epidemic detector without any goldens:

* **ring/gossip equivalence** -- on failure-free runs the detector mode
  is pure observation: gossip reaches the same omega*, serves the same
  jobs, and drains the same per-vehicle energies as the classical ring
  (only the message count differs, by exactly the digest traffic);
* **worker-count determinism** -- gossip failure-mode runs are
  byte-identical across 1 thread, 4 threads, and 4 processes (peer
  selection is keyed-hash, never a shared RNG);
* **shard determinism** -- a sharded gossip run falls back to the
  single-process lockstep engine (digest fanout is fleet-wide, so every
  round crosses cube -- hence shard -- boundaries), recording a
  ``shard_mode_reason`` that names gossip, with byte-identical physics.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, FailureSpec, RunConfig, ScenarioSpec
from repro.core.demand import DemandMap, JobSequence
from repro.core.online import run_online
from repro.vehicles.fleet import FleetConfig

GRID_4 = DemandMap({(x, y): 2.0 for x in range(4) for y in range(4)})
GRID_3 = DemandMap({(x, y): 3.0 for x in range(3) for y in range(3)})

#: (name, demand, omega, capacity, crashed) -- each one cube with enough
#: pairs for the default suspicion threshold and quorum.
SCENARIOS = [
    ("gossip-4x4", GRID_4, 4.0, 64.0, ((0, 0),)),
    ("gossip-3x3", GRID_3, 3.0, 64.0, ((1, 1),)),
]


def _jobs(demand):
    return JobSequence.from_positions(sorted(demand.support()) * 2)


def _physical_fingerprint(result):
    # Everything the fleet *did* -- deliberately excluding message counts,
    # which legitimately differ between ring and gossip (digest traffic).
    return (
        result.jobs_served,
        result.feasible,
        result.max_vehicle_energy,
        result.total_travel,
        result.total_service,
        result.replacements,
        result.searches,
        tuple(sorted(result.vehicle_energies.items())),
    )


class TestRingGossipEquivalence:
    @pytest.mark.parametrize(
        "name,demand,omega,capacity,crashed", SCENARIOS, ids=[s[0] for s in SCENARIOS]
    )
    def test_failure_free_physics_identical(self, name, demand, omega, capacity, crashed):
        jobs = _jobs(demand)
        ring = run_online(
            jobs, omega=omega, capacity=capacity, config=FleetConfig(monitoring=True)
        )
        gossip = run_online(
            jobs,
            omega=omega,
            capacity=capacity,
            config=FleetConfig(monitoring="gossip"),
        )
        assert _physical_fingerprint(ring) == _physical_fingerprint(gossip)
        assert ring.omega_star == gossip.omega_star
        assert gossip.monitoring_mode == "gossip"
        assert gossip.suspicions == 0
        assert gossip.detections == 0

    def test_gossip_messages_exceed_ring_messages(self, ):
        jobs = _jobs(GRID_4)
        ring = run_online(
            jobs, omega=4.0, capacity=64.0, config=FleetConfig(monitoring=True)
        )
        gossip = run_online(
            jobs, omega=4.0, capacity=64.0, config=FleetConfig(monitoring="gossip")
        )
        assert gossip.messages > ring.messages  # digests are real traffic


class TestGossipWorkerDeterminism:
    def _configs(self):
        return [
            RunConfig(
                solver="online-broken",
                scenario=ScenarioSpec.from_demand(demand, name=name, order="sequential"),
                capacity=capacity,
                omega=omega,
                failures=FailureSpec(crashed=crashed),
                recovery_rounds=12,
                params={"monitoring": "gossip"},
            )
            for name, demand, omega, capacity, crashed in SCENARIOS
        ]

    @pytest.fixture(scope="class")
    def serial_payload(self) -> str:
        engine = ExperimentEngine(workers=1)
        return engine.results_payload(engine.run_many(self._configs()))

    def test_four_threads_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload

    def test_four_processes_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=4, use_processes=True)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload

    def test_rerun_byte_identical(self, serial_payload):
        engine = ExperimentEngine(workers=1)
        assert engine.results_payload(engine.run_many(self._configs())) == serial_payload


class TestGossipShardDeterminism:
    def _run(self, shards):
        return run_online(
            _jobs(GRID_4),
            omega=4.0,
            capacity=64.0,
            config=FleetConfig(monitoring="gossip"),
            dead_vehicles=[(0, 0)],
            recovery_rounds=12,
            shards=shards,
        )

    def test_sharded_run_is_byte_identical_to_unsharded(self):
        unsharded = self._run(1)
        sharded = self._run(4)
        assert _physical_fingerprint(sharded) == _physical_fingerprint(unsharded)
        assert sharded.messages == unsharded.messages
        assert sharded.suspicions == unsharded.suspicions
        assert sharded.detection_p50 == unsharded.detection_p50

    def test_shard_mode_reason_names_gossip(self):
        sharded = self._run(4)
        assert sharded.shard_mode == "lockstep"
        assert "gossip" in sharded.shard_mode_reason
