"""Parallel lockstep suite: multi-process failure-mode runs, byte for byte.

PR 9 widens the multi-process shard class from "no failures at all" to
every failure mode whose protocol traffic is provably shard-local
(monitoring without escalation, crashes, suppression, partitions, churn,
edge-keyed lossy/corrupting transports).  This suite pins the contract:

* **Byte identity** -- a full failure-mode configuration produces the same
  result at shards=1, 4, 8 and at any worker count, through the
  ``parallel-lockstep`` mode (asserted, not assumed).
* **Eligibility** -- every disqualifying feature names itself: the
  recorded ``shard_mode_reason`` is the first structural property that
  forced the single-process lockstep fallback, and the fallback itself
  stays byte-identical.
* **Window floor** (satellite 1) -- ``lockstep_window`` derives the
  conservative window from actual probed cross-shard edge latencies;
  sub-unit positive latencies no longer fall through to the hard 1.0
  last resort.
* **Mailbox prefix cuts** (satellite 3) -- many same-timestamp boundary
  messages across >= 3 shards drain in exact ``(timestamp, sequence)``
  order, prefix by prefix.
* **Adaptive windows** -- ``run_lockstep`` with a horizon crosses fewer
  barriers over quiet stretches yet executes the identical event sequence.
* **N -> M resume** -- a service checkpoint taken under N shards resumes
  under M shards to the same ``result_hash`` / ``fleet_digest``.
"""

from __future__ import annotations

import copy
import math

import numpy as np
import pytest

from repro.core.demand import JobSequence
from repro.core.online import run_online
from repro.distsim.engine import Simulator
from repro.distsim.failures import ChurnSpec, FailurePlan, PartitionSpec
from repro.distsim.parallel_lockstep import (
    parallel_lockstep_eligibility,
    shard_lookahead,
)
from repro.distsim.sharding import (
    ShardMailbox,
    cross_shard_edge_latencies,
    lockstep_window,
    run_lockstep,
)
from repro.distsim.transport import (
    CorruptingTransport,
    DistanceLatencyTransport,
    LossyTransport,
    TransportSpec,
)
from repro.vehicles.fleet import FleetConfig

#: Every field two runs must agree on to count as byte-identical.
FIELDS = (
    "jobs_total",
    "jobs_served",
    "feasible",
    "max_vehicle_energy",
    "total_travel",
    "total_service",
    "replacements",
    "searches",
    "failed_replacements",
    "messages",
    "heartbeat_rounds",
    "events_processed",
    "sim_time",
    "messages_dropped",
    "messages_corrupted",
    "escalations",
    "escalated_replacements",
    "adoptions",
    "vehicle_energies",
)


def _assert_identical(a, b):
    for field in FIELDS:
        assert getattr(a, field) == getattr(b, field), field


@pytest.fixture(scope="module")
def failure_workload():
    """A failure-heavy workload: crashes, suppression, a partition, churn."""
    rng = np.random.default_rng(7)
    pts = rng.integers(0, 16, size=(100, 2))
    positions = [tuple(int(c) for c in pts[i % len(pts)]) for i in range(120)]
    jobs = JobSequence.from_positions(positions)
    ids = sorted({tuple(int(c) for c in p) for p in pts})
    plan = FailurePlan()
    for v in ids[::17]:
        plan.crash(v)
    for v in ids[3::23]:
        plan.suppress_initiation(v)
    plan.add_partition(PartitionSpec(start=25.0, end=60.0, axis=0, boundary=8))
    churn = [
        ChurnSpec(time=20.0, vertex=ids[5], action="leave"),
        ChurnSpec(time=45.0, vertex=ids[5], action="join"),
        ChurnSpec(time=70.0, vertex=ids[9], action="leave"),
    ]
    dead = [ids[2], ids[11]]
    return jobs, plan, churn, dead


@pytest.fixture(scope="module")
def tiny_workload():
    """A minimal monitored workload for mode/reason assertions only."""
    rng = np.random.default_rng(3)
    pts = rng.integers(0, 8, size=(30, 2))
    positions = [tuple(int(c) for c in pts[i % len(pts)]) for i in range(40)]
    return JobSequence.from_positions(positions)


EDGE_LOSSY = TransportSpec(
    kind="lossy", params={"loss": 0.08, "delay": 0.02, "seed": 3, "stream": "edge"}
)
GLOBAL_LOSSY = TransportSpec(
    kind="lossy", params={"loss": 0.08, "delay": 0.02, "seed": 3}
)


class TestParallelLockstepByteIdentity:
    """Failure-mode runs: multi-process == single-process, bit for bit."""

    def _run(self, workload, shards, workers=None, transport=EDGE_LOSSY):
        jobs, plan, churn, dead = workload
        return run_online(
            jobs,
            omega=3.0,
            capacity="theorem",
            config=FleetConfig(monitoring=True),
            failure_plan=copy.deepcopy(plan),
            dead_vehicles=dead,
            churn=churn,
            transport=transport,
            escalation=False,
            shards=shards,
            shard_workers=workers,
        )

    @pytest.fixture(scope="class")
    def baseline(self, failure_workload):
        return self._run(failure_workload, 1)

    @pytest.mark.parametrize("shards", [4, 8])
    def test_identical_across_shard_counts(self, failure_workload, baseline, shards):
        sharded = self._run(failure_workload, shards)
        assert sharded.shard_mode == "parallel-lockstep"
        assert sharded.shard_mode_reason == ""
        assert sharded.cross_shard_messages == 0
        _assert_identical(baseline, sharded)

    def test_identical_at_any_worker_count(self, failure_workload, baseline):
        # The worker pool size is pure scheduling: each shard is a closed
        # deterministic sub-simulation, so serializing them changes nothing.
        serial = self._run(failure_workload, 4, workers=1)
        assert serial.shard_mode == "parallel-lockstep"
        _assert_identical(baseline, serial)

    def test_one_barrier_per_shard(self, failure_workload):
        # Zero outbound boundary edges -> infinite Chandy-Misra lookahead
        # -> each worker free-runs through exactly one window barrier.
        sharded = self._run(failure_workload, 4)
        assert sharded.window_barriers == 4

    def test_corrupting_edge_stream_identical(self, failure_workload):
        spec = TransportSpec(
            kind="corrupting",
            params={"rate": 0.1, "delay": 0.02, "seed": 5, "stream": "edge"},
        )
        base = self._run(failure_workload, 1, transport=spec)
        sharded = self._run(failure_workload, 4, transport=spec)
        assert sharded.shard_mode == "parallel-lockstep"
        assert sharded.messages_corrupted == base.messages_corrupted
        _assert_identical(base, sharded)


class TestEligibilityAndFallback:
    """Disqualified configs fall back to lockstep -- attributably, exactly."""

    def _run(self, jobs, shards, **overrides):
        kwargs = dict(
            omega=3.0,
            config=FleetConfig(monitoring=True),
            transport=GLOBAL_LOSSY,
            escalation=False,
            shards=shards,
        )
        kwargs.update(overrides)
        return run_online(jobs, **kwargs)

    def test_global_stream_falls_back_identically(self, failure_workload):
        jobs, plan, churn, dead = failure_workload
        kwargs = dict(churn=churn, dead_vehicles=dead)
        base = self._run(jobs, 1, failure_plan=copy.deepcopy(plan), **kwargs)
        sharded = self._run(jobs, 4, failure_plan=copy.deepcopy(plan), **kwargs)
        assert sharded.shard_mode == "lockstep"
        assert "shared stream" in sharded.shard_mode_reason
        assert sharded.window_barriers > 0
        _assert_identical(base, sharded)

    def test_escalation_reason(self, tiny_workload):
        result = self._run(
            tiny_workload,
            4,
            config=FleetConfig(monitoring=True, escalation=True),
            escalation=None,
        )
        assert result.shard_mode == "lockstep"
        assert result.shard_mode_reason.startswith("escalation")

    def test_recovery_rounds_reason(self, tiny_workload):
        result = self._run(tiny_workload, 4, recovery_rounds=2)
        assert result.shard_mode == "lockstep"
        assert result.shard_mode_reason.startswith("recovery_rounds")

    def test_shared_rng_jitter_reason(self, tiny_workload):
        result = self._run(
            tiny_workload, 4, transport=None, rng=np.random.default_rng(1)
        )
        assert result.shard_mode == "lockstep"
        assert "shared-rng" in result.shard_mode_reason

    def test_single_shard_records_no_mode(self, tiny_workload):
        result = self._run(tiny_workload, 1)
        assert result.shard_mode == ""
        assert result.shard_mode_reason == ""

    def test_shard_safe_config_still_takes_parallel(self, tiny_workload):
        # The PR 8 isolated fast path survives: no failures, pure-edge
        # transport, no monitoring -> "parallel", not "parallel-lockstep".
        result = run_online(tiny_workload, omega=3.0, transport="latency", shards=4)
        assert result.shard_mode == "parallel"
        assert result.shard_mode_reason == ""

    def test_eligibility_unit_reasons(self):
        config = FleetConfig(monitoring=True)
        ok, reason = parallel_lockstep_eligibility(
            "lossy", LossyTransport(stream="edge"), config, None, None, 0, False
        )
        assert ok and reason == ""
        plan = FailurePlan()
        plan.drop_predicates.append(lambda *a: False)
        ok, reason = parallel_lockstep_eligibility(
            "lossy", LossyTransport(stream="edge"), config, None, plan, 0, False
        )
        assert not ok and "drop predicates" in reason
        instance = LossyTransport(stream="edge")
        ok, reason = parallel_lockstep_eligibility(
            instance, instance, config, None, None, 0, False
        )
        assert not ok and "caller-owned" in reason
        ok, reason = parallel_lockstep_eligibility(
            None, None, config, None, None, 0, False
        )
        assert ok  # fixed-delay reliable default, rebuilt per worker


class TestLockstepWindowFloor:
    """Satellite 1: the window derives from real edge latencies, not 1.0."""

    def test_probed_latencies_beat_the_last_resort(self):
        # A distance-proportional transport with a zero floor used to fall
        # through min_latency (0) and fallback (0) to the hard 1.0 last
        # resort -- wildly over-wide when actual cross-shard edges sit a
        # few lattice steps apart.
        transport = DistanceLatencyTransport(delay=0.0, per_step=0.002)
        assert transport.min_latency() == 0.0
        window = lockstep_window(transport, 0.0, edge_latencies=[0.006, 0.014])
        assert window == 0.006

    def test_non_positive_probes_are_ignored(self):
        transport = LossyTransport(delay=0.25)
        assert lockstep_window(transport, 0.0, edge_latencies=[0.0, -1.0]) == 0.25
        assert lockstep_window(transport, 0.0, edge_latencies=[]) == 0.25

    def test_last_resort_only_when_nothing_is_positive(self):
        assert lockstep_window(None, 0.0) == 1.0
        assert lockstep_window(None, 0.05) == 0.05

    def test_cross_shard_probe_sampling(self):
        # Duck-typed plan: two boundary cubes owned by different shards,
        # whose rank-1 siblings belong to the other shard.
        class Hierarchy:
            def siblings(self, index, level):
                return [(index[0] + 1, index[1])]

        class Plan:
            hierarchy = Hierarchy()

            def boundary_cubes(self):
                return [(0, 0), (1, 0)]

            def shard_of(self, index):
                return index[0]

            def shard_of_or(self, index, default):
                return index[0] if index[0] <= 2 else default

        members = {(0, 0): [(1, 1)], (1, 0): [(5, 1)], (2, 0): [(9, 1)]}
        transport = DistanceLatencyTransport(delay=0.0, per_step=0.002)
        probes = cross_shard_edge_latencies(transport, Plan(), members.get)
        assert probes == [0.008, 0.008]  # 4 lattice steps * 0.002, per cube
        assert lockstep_window(transport, 0.0, edge_latencies=probes) == 0.008

    def test_lookahead_infinite_without_boundary_edges(self):
        assert shard_lookahead(LossyTransport(delay=0.5), []) == math.inf
        assert shard_lookahead(LossyTransport(delay=0.5), [((0, 0), (3, 0))]) == 0.5


class TestShardMailboxPrefixCut:
    """Satellite 3: same-timestamp floods drain in exact posted order."""

    def _flood(self):
        mailbox = ShardMailbox()
        # Three barrier epochs; inside each, nine same-timestamp messages
        # interleaved across shards 0/1/2 in a fixed global send order.
        for epoch in range(3):
            time = float(epoch)
            for burst in range(3):
                for source in range(3):
                    mailbox.post(time, source, (source + 1) % 3, (epoch, burst, source))
        return mailbox

    def test_drain_is_a_prefix_cut_in_sequence_order(self):
        mailbox = self._flood()
        assert mailbox.posted == 27
        first = mailbox.drain_until(0.0)
        assert len(first) == 9
        # Same timestamp throughout: order is exactly the posting sequence.
        assert [entry[1] for entry in first] == list(range(9))
        assert [entry[4] for entry in first] == [
            (0, burst, source) for burst in range(3) for source in range(3)
        ]
        assert len(mailbox) == 18
        assert mailbox.exchanged == 9

    def test_repeated_drains_partition_the_ledger(self):
        mailbox = self._flood()
        drained = []
        for epoch in range(3):
            batch = mailbox.drain_until(float(epoch))
            assert all(entry[0] == float(epoch) for entry in batch)
            drained.extend(batch)
        assert len(drained) == 27
        assert [entry[1] for entry in drained] == list(range(27))
        assert len(mailbox) == 0
        assert mailbox.drain_until(math.inf) == []

    def test_mid_epoch_bound_takes_whole_timestamp_group(self):
        mailbox = self._flood()
        batch = mailbox.drain_until(1.5)
        assert len(batch) == 18  # epochs 0 and 1, never a partial timestamp
        assert {entry[0] for entry in batch} == {0.0, 1.0}
        sources = [entry[2] for entry in batch]
        assert sorted(set(sources)) == [0, 1, 2]


class TestAdaptiveWindows:
    """Horizon-bounded barriers: same events, fewer synchronization points."""

    @staticmethod
    def _sparse_simulator(log):
        simulator = Simulator()
        for time in (1.0, 50.0, 100.0):
            simulator.schedule_at(time, lambda t=time: log.append(t))
        return simulator

    def test_grid_vs_horizon_same_events_fewer_barriers(self):
        grid_log, horizon_log = [], []
        grid_executed, grid_barriers = run_lockstep(
            self._sparse_simulator(grid_log), 0.5
        )
        horizon_executed, horizon_barriers = run_lockstep(
            self._sparse_simulator(horizon_log), 0.5, horizon=math.inf
        )
        assert grid_log == horizon_log == [1.0, 50.0, 100.0]
        assert grid_executed == horizon_executed == 3
        assert grid_barriers == 3  # empty windows are skipped, one per event
        assert horizon_barriers == 1  # free-run: the Chandy-Misra optimum

    def test_finite_horizon_batches_nearby_events(self):
        log = []
        simulator = Simulator()
        for time in (1.0, 1.2, 1.4, 80.0):
            simulator.schedule_at(time, lambda t=time: log.append(t))
        executed, barriers = run_lockstep(simulator, 0.5, horizon=2.0)
        assert log == [1.0, 1.2, 1.4, 80.0]
        assert executed == 4
        assert barriers == 2  # [1.0, 3.0) takes the cluster, one more for 80.0

    def test_horizon_below_window_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            run_lockstep(Simulator(), 0.5, horizon=0.25)


class TestServiceShardResume:
    """A checkpoint taken under N shards resumes under M shards, same bytes."""

    @pytest.fixture(scope="class")
    def service_runs(self, tmp_path_factory):
        from repro.api.service import ServiceConfig
        from repro.service import resume_service, run_service
        from repro.workloads.arrivals import streaming_arrivals
        from repro.workloads.library import build_family_demand

        demand = build_family_demand("scale-up", {"side": 8, "per_point": 2.0})
        config = ServiceConfig.from_demand(
            demand, seed=5, shards=2, checkpoint_every=1, window_jobs=20
        )
        jobs = lambda: streaming_arrivals(demand, jobs=80)
        snap = tmp_path_factory.mktemp("snap") / "snap.json"
        full = run_service(config.replace(shards=1), jobs())
        interrupted = run_service(
            config, jobs(), checkpoint_path=snap, stop_after_checkpoints=1
        )
        assert interrupted.interrupted
        return full, snap, jobs, resume_service

    def test_resume_under_more_shards(self, service_runs):
        full, snap, jobs, resume_service = service_runs
        resumed = resume_service(snap, jobs(), shards=5)
        assert resumed.shards == 5
        assert resumed.result_hash() == full.result_hash()
        assert resumed.fleet_digest == full.fleet_digest

    def test_resume_under_one_shard(self, service_runs):
        full, snap, jobs, resume_service = service_runs
        resumed = resume_service(snap, jobs(), shards=1)
        assert resumed.shards == 1
        assert resumed.result_hash() == full.result_hash()

    def test_resume_keeps_snapshot_shards_by_default(self, service_runs):
        full, snap, jobs, resume_service = service_runs
        resumed = resume_service(snap, jobs())
        assert resumed.shards == 2
        assert resumed.result_hash() == full.result_hash()
