"""Property-based tests for the lattice substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.lattice import (
    Box,
    box_neighborhood_size,
    l1_ball,
    l1_ball_size,
    manhattan,
)
from repro.grid.regions import Region, neighborhood

coordinates = st.integers(min_value=-20, max_value=20)
points_2d = st.tuples(coordinates, coordinates)
small_radius = st.integers(min_value=0, max_value=4)


class TestManhattanMetricProperties:
    @given(points_2d, points_2d)
    def test_symmetry(self, p, q):
        assert manhattan(p, q) == manhattan(q, p)

    @given(points_2d, points_2d)
    def test_non_negativity_and_identity(self, p, q):
        distance = manhattan(p, q)
        assert distance >= 0
        assert (distance == 0) == (p == q)

    @given(points_2d, points_2d, points_2d)
    def test_triangle_inequality(self, p, q, r):
        assert manhattan(p, r) <= manhattan(p, q) + manhattan(q, r)

    @given(points_2d, points_2d, points_2d)
    def test_translation_invariance(self, p, q, t):
        shifted_p = tuple(a + b for a, b in zip(p, t))
        shifted_q = tuple(a + b for a, b in zip(q, t))
        assert manhattan(p, q) == manhattan(shifted_p, shifted_q)


class TestBallProperties:
    @given(points_2d, small_radius)
    def test_ball_membership_matches_distance(self, center, radius):
        ball = set(l1_ball(center, radius))
        for point in ball:
            assert manhattan(center, point) <= radius
        assert len(ball) == l1_ball_size(2, radius)

    @given(small_radius, st.integers(min_value=1, max_value=4))
    def test_ball_size_monotone_in_radius_and_dimension(self, radius, dim):
        assert l1_ball_size(dim, radius) <= l1_ball_size(dim, radius + 1)
        assert l1_ball_size(dim, radius) <= l1_ball_size(dim + 1, radius)


class TestNeighborhoodProperties:
    @given(
        st.lists(points_2d, min_size=1, max_size=6, unique=True),
        small_radius,
    )
    @settings(max_examples=50, deadline=None)
    def test_region_neighborhood_contains_region(self, points, radius):
        region = Region.from_points(points)
        hood = region.neighborhood(radius)
        assert set(region.points).issubset(hood)
        assert len(hood) == region.neighborhood_size(radius)

    @given(
        st.lists(points_2d, min_size=1, max_size=6, unique=True),
        small_radius,
    )
    @settings(max_examples=50, deadline=None)
    def test_neighborhood_monotone_in_radius(self, points, radius):
        region = Region.from_points(points)
        assert region.neighborhood_size(radius) <= region.neighborhood_size(radius + 1)

    @given(
        st.tuples(coordinates, coordinates),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        small_radius,
    )
    @settings(max_examples=50, deadline=None)
    def test_box_neighborhood_closed_form_matches_enumeration(
        self, corner, width, height, radius
    ):
        box = Box(corner, (corner[0] + width - 1, corner[1] + height - 1))
        explicit = len(neighborhood(list(box.points()), radius))
        assert box_neighborhood_size(box, radius) == explicit
