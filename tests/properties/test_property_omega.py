"""Property-based tests for the omega characterization (hypothesis).

These check the structural facts the thesis's proofs rely on, over random
small demand maps: the threshold solution really is a solution, the cube
maximum lower-bounds the subset maximum (Corollary 2.2.6), omega_c
lower-bounds omega* (Corollary 2.2.7), the LP/flow value agrees with the
combinatorial characterization (Lemma 2.2.3), and everything is monotone
under demand scaling.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import DemandMap
from repro.core.flows import min_self_radius_capacity
from repro.core.omega import (
    omega_c,
    omega_for_region,
    omega_star_cubes,
    omega_star_exhaustive,
)
from repro.grid.regions import Region

demand_entries = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
    ),
    values=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


def make_demand(entries) -> DemandMap:
    return DemandMap(entries)


class TestOmegaProperties:
    @given(demand_entries)
    @settings(max_examples=40, deadline=None)
    def test_omega_solves_its_threshold_equation(self, entries):
        demand = make_demand(entries)
        region = Region.from_points(demand.support())
        omega = omega_for_region(demand, region)
        total = demand.total()
        k = int(math.floor(omega))
        assert omega * region.neighborhood_size(k) >= total - 1e-6
        if omega > 1e-9:
            shrunk = omega * (1 - 1e-6)
            assert shrunk * region.neighborhood_size(int(math.floor(shrunk))) < total + 1e-6

    @given(demand_entries)
    @settings(max_examples=30, deadline=None)
    def test_cube_max_le_subset_max(self, entries):
        demand = make_demand(entries)
        assert (
            omega_star_cubes(demand).omega
            <= omega_star_exhaustive(demand).omega + 1e-9
        )

    @given(demand_entries)
    @settings(max_examples=30, deadline=None)
    def test_omega_c_le_omega_star(self, entries):
        demand = make_demand(entries)
        assert omega_c(demand) <= omega_star_cubes(demand).omega + 1e-9

    @given(demand_entries, st.floats(min_value=1.5, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_under_scaling(self, entries, factor):
        demand = make_demand(entries)
        scaled = demand.scaled(factor)
        assert omega_star_cubes(scaled).omega >= omega_star_cubes(demand).omega - 1e-9
        assert omega_c(scaled) >= omega_c(demand) - 1e-9

    @given(demand_entries)
    @settings(max_examples=15, deadline=None)
    def test_flow_oracle_matches_subset_maximum(self, entries):
        # Lemma 2.2.3 as a property: program (2.8) == max_T omega_T.
        demand = make_demand(entries)
        flow_value = min_self_radius_capacity(demand, tolerance=1e-3)
        combinatorial = omega_star_exhaustive(demand).omega
        assert abs(flow_value - combinatorial) <= 2e-2 * max(1.0, combinatorial)

    @given(demand_entries, st.tuples(st.integers(-5, 5), st.integers(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, entries, offset):
        demand = make_demand(entries)
        shifted = DemandMap(
            {
                tuple(c + o for c, o in zip(point, offset)): value
                for point, value in demand.items()
            }
        )
        assert math.isclose(
            omega_star_cubes(demand).omega,
            omega_star_cubes(shifted).omega,
            rel_tol=1e-9,
        )
