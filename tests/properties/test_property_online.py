"""Property-based tests of the online protocol's safety invariants.

Whatever the workload and capacity, the protocol must never violate its
physical invariants: a vehicle never spends more than its battery, service
energy equals the number of jobs actually served, and with the theorem's
capacity every job is served.  These are checked over random small bursts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import JobSequence
from repro.core.online import run_online

positions = st.tuples(st.integers(0, 2), st.integers(0, 2))
bursts = st.lists(positions, min_size=1, max_size=25)


class TestOnlineSafetyInvariants:
    @given(bursts, st.floats(min_value=3.0, max_value=30.0))
    @settings(max_examples=25, deadline=None)
    def test_no_vehicle_exceeds_capacity(self, job_positions, capacity):
        jobs = JobSequence.from_positions(job_positions)
        result = run_online(jobs, omega=3.0, capacity=capacity)
        for energy in result.vehicle_energies.values():
            assert energy <= capacity + 1e-9

    @given(bursts, st.floats(min_value=3.0, max_value=30.0))
    @settings(max_examples=25, deadline=None)
    def test_service_energy_equals_jobs_served(self, job_positions, capacity):
        jobs = JobSequence.from_positions(job_positions)
        result = run_online(jobs, omega=3.0, capacity=capacity)
        assert result.total_service == job_positions.__len__() * 1.0 if result.feasible else True
        assert result.total_service <= len(job_positions) + 1e-9
        assert result.jobs_served <= result.jobs_total

    @given(bursts)
    @settings(max_examples=25, deadline=None)
    def test_theorem_capacity_always_feasible(self, job_positions):
        jobs = JobSequence.from_positions(job_positions)
        result = run_online(jobs)  # capacity = (4*3^l + l) * omega_c
        assert result.feasible
        assert result.max_vehicle_energy <= result.capacity + 1e-9

    @given(bursts, st.floats(min_value=3.0, max_value=30.0))
    @settings(max_examples=20, deadline=None)
    def test_energy_conservation(self, job_positions, capacity):
        jobs = JobSequence.from_positions(job_positions)
        result = run_online(jobs, omega=3.0, capacity=capacity)
        total = sum(result.vehicle_energies.values())
        assert total == result.total_travel + result.total_service
        # Served jobs account for exactly their energy.
        assert result.total_service >= result.jobs_served * 1.0 - 1e-9
