"""Property-based tests for the constructive plan and the greedy heuristic."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_nearest_vehicle_plan
from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan
from repro.core.offline import upper_bound_factor
from repro.core.omega import omega_star_cubes
from repro.core.plan import build_cube_plan

demand_entries = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8)
    ),
    values=st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestConstructivePlanProperties:
    @given(demand_entries)
    @settings(max_examples=40, deadline=None)
    def test_plan_always_covers_demand(self, entries):
        demand = DemandMap(entries)
        plan = build_cube_plan(demand)
        audit = audit_plan(plan, demand)
        assert audit.feasible, audit.violations

    @given(demand_entries)
    @settings(max_examples=40, deadline=None)
    def test_plan_within_lemma_budget(self, entries):
        demand = DemandMap(entries)
        omega = omega_star_cubes(demand).omega
        plan = build_cube_plan(demand, omega=omega)
        assert plan.max_vehicle_energy() <= upper_bound_factor(2) * omega + 1e-6

    @given(demand_entries)
    @settings(max_examples=40, deadline=None)
    def test_plan_total_energy_at_least_total_demand(self, entries):
        demand = DemandMap(entries)
        plan = build_cube_plan(demand)
        assert plan.total_energy() >= demand.total() - 1e-6

    @given(demand_entries)
    @settings(max_examples=40, deadline=None)
    def test_vehicles_unique(self, entries):
        demand = DemandMap(entries)
        plan = build_cube_plan(demand)
        starts = [route.start for route in plan]
        assert len(starts) == len(set(starts))


class TestGreedyHeuristicProperties:
    @given(demand_entries, st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_greedy_never_exceeds_capacity(self, entries, slack):
        demand = DemandMap(entries)
        capacity = slack * max(1.0, omega_star_cubes(demand).omega)
        plan = greedy_nearest_vehicle_plan(demand, capacity)
        for route in plan:
            assert route.total_energy <= capacity + 1e-9

    @given(demand_entries)
    @settings(max_examples=20, deadline=None)
    def test_greedy_feasible_with_generous_capacity(self, entries):
        demand = DemandMap(entries)
        capacity = upper_bound_factor(2) * max(1.0, omega_star_cubes(demand).omega)
        plan = greedy_nearest_vehicle_plan(demand, capacity)
        assert audit_plan(plan, demand, capacity=capacity).feasible
