"""Property tests: the registry's three position->pair lookup paths agree.

``FleetRegistry`` answers "which pair covers this position?" three ways:
the scalar dense-window read (``pair_id_at``, inclusive ``lo <= c <= hi``
bounds), the vectorized batch read (``pair_ids_of``, half-open
``0 <= offset < side_lengths`` bounds), and -- past
``_DENSE_WINDOW_CAP`` -- a tuple-keyed dict fallback.  The bound styles
are written differently (``c > hi`` vs ``offset < hi - lo + 1``) and the
fallback is keyed on vehicle homes rather than window offsets, so this
suite pins all three to the same answer on exactly the positions where
they could diverge: window corners, one-off-the-edge probes, vehicle
homes, and arbitrary interior/exterior points.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.vehicles.registry as registry_module
from repro.core.demand import DemandMap
from repro.vehicles.fleet import Fleet, FleetConfig

coordinate = st.integers(min_value=-8, max_value=8)
demand_points = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=6, unique=True
)
probe_coordinate = st.integers(min_value=-12, max_value=12)
extra_probes = st.lists(
    st.tuples(probe_coordinate, probe_coordinate), min_size=0, max_size=10
)


def _fleet(points):
    demand = DemandMap({point: 1.0 for point in points})
    return Fleet(demand, omega=3.0, config=FleetConfig())


def _fallback_fleet(points):
    """Build the same fleet with the dense window disabled (dict path)."""
    saved = registry_module._DENSE_WINDOW_CAP
    registry_module._DENSE_WINDOW_CAP = 0
    try:
        return _fleet(points)
    finally:
        registry_module._DENSE_WINDOW_CAP = saved


def _boundary_probes(flat):
    """Window corners and one-off-the-edge positions on every axis."""
    lo, hi = flat.window.lo, flat.window.hi
    probes = [tuple(lo), tuple(hi), (lo[0], hi[1]), (hi[0], lo[1])]
    for axis in range(len(lo)):
        for base in (lo, hi):
            for delta in (-1, 1):
                probe = list(base)
                probe[axis] += delta
                probes.append(tuple(probe))
    return probes


class TestLookupPathEquivalence:
    @given(demand_points, extra_probes)
    @settings(max_examples=40, deadline=None)
    def test_scalar_vectorized_and_fallback_agree(self, points, probes):
        dense = _fleet(points).flat
        fallback = _fallback_fleet(points).flat
        assert dense._pos_pair is not None
        assert fallback._pos_pair is None
        # Same construction order, so the pair tables are identical and
        # pair ids are directly comparable across the two registries.
        assert dense.pair_keys == fallback.pair_keys

        all_probes = _boundary_probes(dense) + list(dense.identities) + probes
        scalar_dense = [dense.pair_id_at(p) for p in all_probes]
        scalar_fallback = [fallback.pair_id_at(p) for p in all_probes]
        assert scalar_dense == scalar_fallback

        batch = np.asarray(all_probes, dtype=np.int64)
        assert dense.pair_ids_of(batch).tolist() == scalar_dense
        assert fallback.pair_ids_of(batch).tolist() == scalar_dense

    @given(demand_points)
    @settings(max_examples=40, deadline=None)
    def test_homes_resolve_to_the_routing_dict_answer(self, points):
        fleet = _fleet(points)
        flat = fleet.flat
        for identity in flat.identities:
            pid = flat.pair_id_at(identity)
            expected = fleet.pair_key_of(identity)
            assert flat.pair_keys[pid] == expected

    def test_exact_window_edges(self):
        # Deterministic pin of the historically divergent bound styles:
        # hi itself is inside (inclusive), hi + 1 is outside on each axis.
        flat = _fleet([(0, 0), (4, 3)]).flat
        lo, hi = flat.window.lo, flat.window.hi
        inside = [tuple(lo), tuple(hi)]
        outside = [
            (lo[0] - 1, lo[1]),
            (lo[0], lo[1] - 1),
            (hi[0] + 1, hi[1]),
            (hi[0], hi[1] + 1),
        ]
        batch = np.asarray(inside + outside, dtype=np.int64)
        ids = flat.pair_ids_of(batch).tolist()
        for probe, pid in zip(inside + outside, ids):
            assert flat.pair_id_at(probe) == pid
        assert all(pid == -1 for pid in ids[len(inside) :])
