"""Sharding determinism property suite: N shards == 1 shard, byte for byte.

The contract of :mod:`repro.distsim.sharding` is that ``shards`` is an
execution detail, never a behavior knob.  This suite asserts it across
every mechanism:

* **Goldens** -- every scenario family x {plain, monitoring, escalation,
  lossy} golden config (the same 40 configs the flat-core differential
  suite pins) run with ``shards=4`` reproduces the committed golden digest
  bit for bit.  These configs carry a seeded RNG transport, so they
  exercise the *lockstep* mode (single fleet, window barriers).
* **Parallel isolated mode** -- a shard-safe direct ``run_online`` config
  (reliable transport, no failures) is byte-identical across shard counts,
  including the float-sum-sensitive energy totals.  This exercises the
  multi-process worker/merge path.
* **Service harness** -- a sharded ``run_service`` reproduces the
  1-shard ``result_hash`` and ``fleet_digest`` (shard bookkeeping is
  excluded from the hashed fields by design).
* **Engine fan-out** -- ``run_service_many`` is byte-identical across
  1 thread / 4 threads / 4 processes and dedupes duplicate configs.

``config_hash`` and the ``shard_mode`` / ``shard_mode_reason`` extras are
the only fields allowed to differ between a ``shards=4`` and a
``shards=1`` RunResult (the config serializes ``shards`` when > 1, and
sharded runs record which execution mode actually ran -- that is what
keeps all pre-sharding hashes stable), so golden comparisons normalize
them before hashing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import ExperimentEngine
from repro.api.service import ServiceConfig
from repro.core.online import run_online
from repro.service import run_service
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import random_arrivals, streaming_arrivals
from repro.workloads.library import build_family_demand, family_config

GOLDEN_PATH = Path(__file__).parent / "data" / "flat_core_goldens.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

SEED = 1
PRESET = "small"
SHARDS = 4

#: Must mirror tests/properties/make_flat_core_goldens.py exactly.
MODES = {
    "plain": ("online", {}),
    "monitoring": ("online-broken", {}),
    "escalation": ("online", {"escalation": True}),
    "lossy": (
        "online",
        {"transport": {"kind": "lossy", "params": {"loss": 0.05, "seed": 3}}},
    ),
}


def _digest(result) -> str:
    return hashlib.blake2b(
        result.canonical_json().encode("utf-8"), digest_size=16
    ).hexdigest()


@pytest.fixture(scope="module")
def engine():
    return ExperimentEngine()


class TestGoldenShardInvariance:
    """Every golden config, run at shards=4, still hits its golden digest."""

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_sharded_run_matches_golden(self, key, engine):
        family, label = key.rsplit("/", 1)
        solver, overrides = MODES[label]
        config = family_config(
            family, solver, seed=SEED, preset=PRESET, **overrides
        ).replace(shards=SHARDS)
        result = engine.run(config)
        base_hash = config.replace(shards=1).config_hash()
        # Shard bookkeeping (mode + fallback reason) is recorded in extras
        # only when shards > 1; like config_hash it is normalized out --
        # golden identity covers the physical result, not the execution
        # mode that produced it.
        extras = {
            key: value
            for key, value in result.extras_dict().items()
            if not key.startswith("shard_mode")
        }
        normalized = dataclasses.replace(result, config_hash=base_hash, extras=extras)
        assert _digest(normalized) == GOLDENS[key], (
            f"{key}: a {SHARDS}-shard run diverged from the 1-shard golden"
        )


class TestParallelModeByteIdentity:
    """The multi-process isolated path reproduces every observable field."""

    FIELDS = (
        "jobs_total",
        "jobs_served",
        "feasible",
        "max_vehicle_energy",
        "total_travel",
        "total_service",
        "omega",
        "omega_star",
        "capacity",
        "theorem_capacity",
        "replacements",
        "searches",
        "failed_replacements",
        "messages",
        "heartbeat_rounds",
        "vehicle_energies",
        "events_processed",
        "sim_time",
        "transport",
        "messages_dropped",
        "messages_corrupted",
    )

    @pytest.fixture(scope="class")
    def workload(self):
        demand = build_family_demand("scale-up", {"side": 12, "per_point": 2.0})
        return random_arrivals(demand, np.random.default_rng(0))

    @pytest.fixture(scope="class")
    def baseline(self, workload):
        return run_online(
            workload, capacity="theorem", config=FleetConfig(), engine="events"
        )

    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_identical_across_shard_counts(self, workload, baseline, shards):
        sharded = run_online(
            workload,
            capacity="theorem",
            config=FleetConfig(),
            engine="events",
            shards=shards,
        )
        assert sharded.shards == shards
        assert sharded.cross_shard_messages == 0  # traffic is cube-local
        for field in self.FIELDS:
            assert getattr(sharded, field) == getattr(baseline, field), field

    def test_rng_coupled_run_takes_lockstep_and_matches(self, workload):
        base = run_online(
            workload,
            capacity="theorem",
            config=FleetConfig(),
            engine="events",
            rng=np.random.default_rng(7),
        )
        sharded = run_online(
            workload,
            capacity="theorem",
            config=FleetConfig(),
            engine="events",
            rng=np.random.default_rng(7),
            shards=SHARDS,
        )
        assert sharded.window_barriers > 0  # proof it went through lockstep
        for field in self.FIELDS:
            assert getattr(sharded, field) == getattr(base, field), field

    def test_sharded_rounds_engine_rejected(self, workload):
        with pytest.raises(ValueError, match="engine"):
            run_online(workload, engine="rounds", shards=2)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_shards_validation(self, workload, bad):
        with pytest.raises(ValueError):
            run_online(workload, engine="events", shards=bad)


class TestServiceShardInvariance:
    """Sharded service runs keep result_hash and fleet_digest."""

    @pytest.fixture(scope="class")
    def demand(self):
        return build_family_demand("scale-up", {"side": 8, "per_point": 2.0})

    def _run(self, demand, shards):
        config = ServiceConfig.from_demand(demand, seed=5, shards=shards)
        return run_service(config, streaming_arrivals(demand, jobs=60))

    def test_result_hash_and_fleet_digest_invariant(self, demand):
        base = self._run(demand, 1)
        sharded = self._run(demand, SHARDS)
        assert sharded.shards == SHARDS
        assert sharded.result_hash() == base.result_hash()
        assert sharded.fleet_digest == base.fleet_digest

    def test_shard_bookkeeping_not_hashed(self, demand):
        sharded = self._run(demand, SHARDS)
        mutated = dataclasses.replace(
            sharded, cross_shard_messages=sharded.cross_shard_messages + 99
        )
        assert mutated.result_hash() == sharded.result_hash()


class TestEngineServiceFanout:
    """run_service_many: worker determinism + caching, like run_many."""

    @staticmethod
    def _items():
        demand_a = build_family_demand("scale-up", {"side": 8, "per_point": 2.0})
        demand_b = build_family_demand("scale-up", {"side": 10, "per_point": 2.0})
        a = ServiceConfig.from_demand(demand_a, seed=3)
        b = ServiceConfig.from_demand(demand_b, seed=4)
        return [(a, 30), (b, 30), (a, 30)]

    @pytest.fixture(scope="class")
    def serial(self):
        engine = ExperimentEngine(workers=1)
        results = engine.run_service_many(self._items())
        return engine, results

    def test_duplicates_solved_once_and_filled(self, serial):
        engine, results = serial
        assert engine.stats.executed == 2
        assert results[0].result_hash() == results[2].result_hash()

    def test_four_threads_byte_identical(self, serial):
        _, base = serial
        engine = ExperimentEngine(workers=4)
        results = engine.run_service_many(self._items())
        assert [r.canonical_json() for r in results] == [
            r.canonical_json() for r in base
        ]

    def test_four_processes_byte_identical(self, serial):
        _, base = serial
        engine = ExperimentEngine(workers=4, use_processes=True)
        results = engine.run_service_many(self._items())
        assert [r.canonical_json() for r in results] == [
            r.canonical_json() for r in base
        ]

    def test_disk_cache_round_trip(self, serial, tmp_path):
        _, base = serial
        (config, jobs), *_ = self._items()
        first = ExperimentEngine(workers=1, cache_dir=tmp_path)
        a = first.run_service(config, jobs)
        second = ExperimentEngine(workers=1, cache_dir=tmp_path)
        b = second.run_service(config, jobs)
        assert second.stats.executed == 0
        assert second.stats.disk_cache_hits == 1
        assert a.canonical_json() == b.canonical_json()
        assert a.canonical_json() == base[0].canonical_json()
