"""The differential suite's transport axis.

Three relations pin the transport layer, with no golden values:

* **adapter/event equivalence** -- under a reliable transport the
  ``engine="rounds"`` adapter and the native event driver produce the same
  physical outcome (served jobs, energies, messages, counters) on every
  failure-free family workload;
* **invariants under adversarial channels** -- for every family x online
  solver, seeded loss and Byzantine corruption may degrade service but
  never break the model: all solvers still agree on ``omega*``, any
  feasible run still costs at least the offline bound, and the run is a
  pure function of its config (byte-identical on re-execution);
* **eventual job service** -- with monitoring and recovery rounds, a lossy
  channel delays replacements but every job is still eventually served on
  a workload provisioned for it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentEngine, TransportSpec
from repro.core.online import run_online
from repro.distsim.transport import LossyTransport
from repro.vehicles.fleet import FleetConfig
from repro.workloads.library import (
    available_families,
    family_broken_failures,
    family_config,
    family_spec,
    get_family,
)

SEED = 1
FAMILIES = sorted(available_families())
ONLINE_SOLVERS = ("online", "online-broken")

#: The adversarial channels of the transport axis.  Loss/corruption rates
#: are low enough that CI-scale workloads still terminate quickly but high
#: enough that every family sees at least some interference.
ADVERSARIAL_TRANSPORTS = (
    TransportSpec("lossy", {"loss": 0.1, "seed": 3}),
    TransportSpec("corrupting", {"rate": 0.1, "seed": 3}),
)

RELATIVE_TOLERANCE = 1e-6


def _fingerprint(result):
    return (
        result.jobs_served,
        result.feasible,
        result.max_vehicle_energy,
        result.total_travel,
        result.total_service,
        result.replacements,
        result.searches,
        result.messages,
        tuple(sorted(result.vehicle_energies.items())),
    )


@pytest.mark.parametrize("family", FAMILIES)
class TestRoundAdapterMatchesEventDriver:
    """engine="rounds" is an adapter over the event clock; under a reliable
    transport it must reproduce the native event driver's physics exactly
    on failure-free runs."""

    def test_equivalent_under_reliable_transport(self, family):
        jobs = family_spec(family, seed=SEED, preset="small").jobs()
        results = {}
        for engine in ("rounds", "events"):
            results[engine] = run_online(
                jobs,
                capacity="theorem",
                config=FleetConfig(),
                transport=TransportSpec("reliable"),
                engine=engine,
            )
        assert _fingerprint(results["rounds"]) == _fingerprint(results["events"])
        assert results["events"].transport == "reliable"


def _adversarial_config(family: str, solver: str, transport: TransportSpec):
    if solver == "online-broken":
        # The family's own failure plan plus the adversarial channel; the
        # explicit transport wins over any family-bundled one.
        return family_config(family, solver, seed=SEED, preset="small", transport=transport)
    return family_config(family, solver, seed=SEED, preset="small").replace(
        transport=transport
    )


@pytest.fixture(scope="module")
def adversarial_results():
    """family x online-solver x transport, solved once and shared."""
    engine = ExperimentEngine()
    results = {}
    for family in FAMILIES:
        results[(family, "offline")] = engine.run(
            family_config(family, "offline", seed=SEED, preset="small")
        )
        for solver in ONLINE_SOLVERS:
            for transport in ADVERSARIAL_TRANSPORTS:
                config = _adversarial_config(family, solver, transport)
                results[(family, solver, transport.kind)] = engine.run(config)
    return results


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("solver", ONLINE_SOLVERS)
@pytest.mark.parametrize("kind", [spec.kind for spec in ADVERSARIAL_TRANSPORTS])
class TestInvariantsUnderAdversarialTransports:
    def test_run_completes_with_consistent_numbers(
        self, adversarial_results, family, solver, kind
    ):
        result = adversarial_results[(family, solver, kind)]
        assert result.extra("transport") == kind
        assert 0 <= result.jobs_served <= result.jobs_total
        assert result.jobs_total > 0
        assert result.max_vehicle_energy >= 0.0

    def test_omega_star_agrees_with_offline(
        self, adversarial_results, family, solver, kind
    ):
        """The adversary attacks the channel, never the workload: the
        offline lower bound is untouched."""
        result = adversarial_results[(family, solver, kind)]
        reference = adversarial_results[(family, "offline")].omega_star
        assert result.omega_star == pytest.approx(reference, rel=RELATIVE_TOLERANCE)

    def test_feasible_runs_cost_at_least_the_offline_bound(
        self, adversarial_results, family, solver, kind
    ):
        result = adversarial_results[(family, solver, kind)]
        if result.feasible:
            floor = result.omega_star * (1.0 - RELATIVE_TOLERANCE)
            assert result.max_vehicle_energy >= floor

    def test_rerun_is_byte_identical(self, adversarial_results, family, solver, kind):
        """Seeded adversaries are part of the config: re-executing in a
        fresh engine reproduces the result bit for bit."""
        transport = next(t for t in ADVERSARIAL_TRANSPORTS if t.kind == kind)
        config = _adversarial_config(family, solver, transport)
        fresh = ExperimentEngine().run(config)
        assert fresh.canonical_json() == adversarial_results[
            (family, solver, kind)
        ].canonical_json()


class TestEventualJobServiceUnderLoss:
    def test_monitoring_recovers_every_job_on_a_lossy_channel(self):
        """Replacement searches may lose messages, but the monitoring loop
        keeps retrying: on a provisioned workload every job is eventually
        served."""
        from repro.core.demand import JobSequence

        jobs = JobSequence.from_positions([(0, 0)] * 20)
        result = run_online(
            jobs,
            omega=3.0,
            capacity=8.0,
            config=FleetConfig(monitoring=True),
            recovery_rounds=6,
            transport=LossyTransport(loss=0.15, seed=5),
        )
        assert result.transport == "lossy"
        assert result.messages_dropped > 0
        assert result.feasible
        assert result.jobs_served == result.jobs_total

    def test_corrupted_channel_degrades_but_never_crashes(self):
        """Byzantine corruption of Phase I/II messages is survived legally:
        the run terminates, counters stay consistent, service may degrade."""
        from repro.core.demand import JobSequence

        jobs = JobSequence.from_positions([(0, 0), (1, 1)] * 15)
        result = run_online(
            jobs,
            omega=3.0,
            capacity=8.0,
            config=FleetConfig(monitoring=True),
            recovery_rounds=4,
            transport=TransportSpec("corrupting", {"rate": 0.3, "seed": 9}),
        )
        assert result.messages_corrupted > 0
        assert 0 <= result.jobs_served <= result.jobs_total
