"""Checkpoint/resume exactness and snapshot round-tripping.

A service interrupted at a checkpoint and resumed from the snapshot must
reproduce the uninterrupted run *exactly* -- same ``result_hash`` and the
same ``fleet_digest`` (which covers the full physical and protocol state
of every vehicle), even under lossy transport, churn, and escalation.
"""

from __future__ import annotations

import json

import pytest

from repro.api.service import ServiceConfig
from repro.core.demand import DemandMap
from repro.distsim.failures import ChurnSpec
from repro.distsim.transport import TransportSpec
from repro.io.serialize import load_json, save_json
from repro.service import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    load_checkpoint,
    resume_service,
    run_service,
)
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import alternating_arrivals

QUIET_DEMAND = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (5, 4): 2.0, (1, 6): 5.0})

#: The hardest resume configuration: loss + churn + monitoring + escalation.
HARD_DEMAND = DemandMap(
    {(0, 0): 6.0, (2, 1): 5.0, (5, 4): 4.0, (1, 6): 6.0, (3, 3): 4.0}
)
HARD_KWARGS = dict(
    fleet=FleetConfig(monitoring=True, escalation=True),
    recovery_rounds=2,
    churn=(
        ChurnSpec(time=6.5, vertex=(0, 0), action="leave"),
        ChurnSpec(time=15.5, vertex=(0, 0), action="join"),
    ),
    transport=TransportSpec(kind="lossy", params=(("loss", 0.15), ("seed", 3))),
)


def _interrupt_and_resume(demand, config, tmp_path, stop_after=2):
    jobs = alternating_arrivals(demand)
    full = run_service(config, list(jobs.jobs))
    snapshot = tmp_path / "snap.json"
    partial = run_service(
        config,
        list(jobs.jobs),
        checkpoint_path=str(snapshot),
        stop_after_checkpoints=stop_after,
    )
    resumed = resume_service(str(snapshot), list(jobs.jobs))
    return full, partial, resumed


class TestResumeExactness:
    def test_quiet_run(self, tmp_path):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        full, partial, resumed = _interrupt_and_resume(QUIET_DEMAND, config, tmp_path)
        assert partial.interrupted and partial.checkpoints_written == 2
        assert partial.jobs_total < full.jobs_total
        assert resumed.resumed and not resumed.interrupted
        assert resumed.result_hash() == full.result_hash()
        assert resumed.fleet_digest == full.fleet_digest

    def test_lossy_churn_escalation_run(self, tmp_path):
        config = ServiceConfig.from_demand(
            HARD_DEMAND, window_jobs=5, checkpoint_every=1, **HARD_KWARGS
        )
        full, partial, resumed = _interrupt_and_resume(HARD_DEMAND, config, tmp_path)
        assert partial.interrupted
        assert resumed.result_hash() == full.result_hash()
        assert resumed.fleet_digest == full.fleet_digest
        assert full.messages_dropped > 0  # losses actually happened across the cut

    def test_resume_continues_metrics_rollup(self, tmp_path):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        full, _, resumed = _interrupt_and_resume(QUIET_DEMAND, config, tmp_path)
        assert resumed.rollup["jobs_served"] == full.rollup["jobs_served"]
        assert resumed.rollup["messages"] == full.rollup["messages"]


class TestRotatingCheckpoints:
    def _run_with_rotation(self, tmp_path, *, keep, stop_after=3):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        jobs = alternating_arrivals(QUIET_DEMAND)
        snapshot = tmp_path / "snap.json"
        partial = run_service(
            config,
            list(jobs.jobs),
            checkpoint_path=str(snapshot),
            keep_checkpoints=keep,
            stop_after_checkpoints=stop_after,
        )
        return config, jobs, snapshot, partial

    def test_retains_exactly_the_last_k_slots(self, tmp_path):
        _, _, snapshot, partial = self._run_with_rotation(tmp_path, keep=2)
        assert partial.interrupted and partial.checkpoints_written == 3
        slots = sorted(tmp_path.glob("snap.w*.json"))
        assert len(slots) == 2
        # the plain path tracks the latest slot exactly
        assert json.loads(snapshot.read_text()) == json.loads(slots[-1].read_text())

    def test_pruning_is_deterministic_and_ordered(self, tmp_path):
        _, _, _, _ = self._run_with_rotation(tmp_path, keep=1)
        slots = sorted(tmp_path.glob("snap.w*.json"))
        assert len(slots) == 1  # older slots were pruned as they rotated out

    def test_resume_from_an_older_snapshot_is_exact(self, tmp_path):
        config, jobs, _, partial = self._run_with_rotation(tmp_path, keep=3)
        assert partial.checkpoints_written == 3
        full = run_service(config, list(jobs.jobs))
        slots = sorted(tmp_path.glob("snap.w*.json"))
        assert len(slots) == 3
        # every retained slot -- not just the latest -- replays to the
        # uninterrupted run's exact result
        for slot in slots:
            resumed = resume_service(str(slot), list(jobs.jobs))
            assert resumed.resumed and not resumed.interrupted
            assert resumed.result_hash() == full.result_hash()
            assert resumed.fleet_digest == full.fleet_digest

    def test_rejects_degenerate_keep(self, tmp_path):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        jobs = alternating_arrivals(QUIET_DEMAND)
        with pytest.raises(ValueError, match="keep_checkpoints"):
            run_service(
                config,
                list(jobs.jobs),
                checkpoint_path=str(tmp_path / "snap.json"),
                keep_checkpoints=0,
            )


class TestSnapshotFormat:
    def _write_snapshot(self, tmp_path):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        jobs = alternating_arrivals(QUIET_DEMAND)
        run_service(
            config,
            list(jobs.jobs),
            checkpoint_path=str(tmp_path / "snap.json"),
            stop_after_checkpoints=1,
        )
        return tmp_path / "snap.json", config, jobs

    def test_round_trips_through_repro_io_serialize(self, tmp_path):
        snapshot, _, _ = self._write_snapshot(tmp_path)
        payload = load_json(snapshot)
        assert payload["schema"] == CHECKPOINT_SCHEMA
        assert payload["version"] == CHECKPOINT_VERSION
        copy = tmp_path / "copy.json"
        save_json(payload, copy)
        assert load_json(copy) == payload
        # and a snapshot loaded from the copied file still resumes
        jobs = alternating_arrivals(QUIET_DEMAND)
        resumed = resume_service(str(copy), list(jobs.jobs))
        assert resumed.resumed and resumed.feasible

    def test_snapshot_is_plain_json(self, tmp_path):
        snapshot, _, _ = self._write_snapshot(tmp_path)
        payload = json.loads(snapshot.read_text())
        for key in ("schema", "version", "config", "clock", "fleet", "jobs", "rng"):
            assert key in payload

    def test_load_rejects_wrong_schema(self, tmp_path):
        snapshot, _, _ = self._write_snapshot(tmp_path)
        payload = load_json(snapshot)
        payload["schema"] = "something/else"
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(payload)

    def test_load_rejects_future_version(self, tmp_path):
        snapshot, _, _ = self._write_snapshot(tmp_path)
        payload = load_json(snapshot)
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(payload)

    def test_resume_rejects_a_different_config(self, tmp_path):
        snapshot, config, jobs = self._write_snapshot(tmp_path)
        other = config.replace(window_jobs=7)
        with pytest.raises(ValueError, match="config"):
            run_service(
                other, list(jobs.jobs), snapshot=load_checkpoint(snapshot)
            )


class TestLiveStateStore:
    def test_state_file_and_event_log(self, tmp_path):
        config = ServiceConfig.from_demand(
            QUIET_DEMAND, window_jobs=4, checkpoint_every=1
        )
        jobs = alternating_arrivals(QUIET_DEMAND)
        state_path = tmp_path / "state.json"
        log_path = tmp_path / "events.jsonl"
        result = run_service(
            config,
            list(jobs.jobs),
            state_path=str(state_path),
            log_path=str(log_path),
            checkpoint_path=str(tmp_path / "snap.json"),
        )
        state = json.loads(state_path.read_text())
        assert state["finished"] is True
        assert state["jobs"]["served"] == result.jobs_served
        assert state["checkpoints_written"] == result.checkpoints_written
        assert state["fleet"]["messages"] == result.messages
        # active_pairs is bounded by the fleet, not the stream
        assert len(state["active_pairs"]) <= result.jobs_total
        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        kinds = [entry["event"] for entry in events]
        assert kinds.count("window_closed") == result.windows
        assert kinds[-1] == "service_finished"
