"""CLI coverage for ``repro serve`` and ``repro run --metrics-out``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.demand import DemandMap
from repro.io.serialize import demand_to_json, save_json


@pytest.fixture
def demand_path(tmp_path):
    demand = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (1, 4): 2.0})
    path = tmp_path / "demand.json"
    save_json(demand_to_json(demand), path)
    return str(path)


class TestServe:
    def test_serve_writes_every_output(self, tmp_path, demand_path, capsys):
        out = {name: str(tmp_path / name) for name in
               ("result.json", "state.json", "events.jsonl", "metrics.jsonl", "snap.json")}
        code = main(
            [
                "serve",
                "--demand-json", demand_path,
                "--jobs", "16",
                "--window", "4",
                "--checkpoint", out["snap.json"],
                "--checkpoint-every", "2",
                "--state-out", out["state.json"],
                "--log-out", out["events.jsonl"],
                "--metrics-out", out["metrics.jsonl"],
                "--json", out["result.json"],
            ]
        )
        assert code == 0
        assert "Service run" in capsys.readouterr().out
        result = json.loads((tmp_path / "result.json").read_text())
        assert result["type"] == "service_result"
        assert result["jobs_served"] == 16
        assert result["windows"] == 4
        assert result["checkpoints_written"] >= 1
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["finished"] is True
        assert (tmp_path / "events.jsonl").read_text().strip()
        assert (tmp_path / "metrics.jsonl").read_text().strip()
        snap = json.loads((tmp_path / "snap.json").read_text())
        assert snap["schema"] == "repro.service/checkpoint"

    def test_serve_stop_and_resume_reproduce_the_full_run(self, tmp_path, demand_path):
        base = [
            "serve",
            "--demand-json", demand_path,
            "--jobs", "20",
            "--window", "4",
        ]
        full_out = str(tmp_path / "full.json")
        assert main(base + ["--json", full_out]) == 0
        snapshot = str(tmp_path / "snap.json")
        partial_out = str(tmp_path / "partial.json")
        assert main(
            base
            + [
                "--checkpoint", snapshot,
                "--checkpoint-every", "1",
                "--stop-after-checkpoints", "2",
                "--json", partial_out,
            ]
        ) == 0
        resumed_out = str(tmp_path / "resumed.json")
        assert main(
            [
                "serve",
                "--resume", snapshot,
                "--jobs", "20",
                "--json", resumed_out,
            ]
        ) == 0
        full = json.loads((tmp_path / "full.json").read_text())
        partial = json.loads((tmp_path / "partial.json").read_text())
        resumed = json.loads((tmp_path / "resumed.json").read_text())
        assert partial["interrupted"] is True
        assert resumed["resumed"] is True
        assert resumed["result_hash"] == full["result_hash"]
        assert resumed["fleet_digest"] == full["fleet_digest"]

    def test_keep_checkpoints_rotates_numbered_slots(self, tmp_path, demand_path):
        snap = tmp_path / "snap.json"
        code = main(
            [
                "serve",
                "--demand-json", demand_path,
                "--jobs", "16",
                "--window", "4",
                "--checkpoint", str(snap),
                "--checkpoint-every", "1",
                "--keep-checkpoints", "2",
            ]
        )
        assert code == 0
        slots = sorted(tmp_path.glob("snap.w*.json"))
        assert len(slots) == 2
        assert json.loads(snap.read_text()) == json.loads(slots[-1].read_text())

    def test_keep_checkpoints_needs_a_checkpoint_path(self, demand_path, capsys):
        code = main(
            [
                "serve",
                "--demand-json", demand_path,
                "--jobs", "8",
                "--keep-checkpoints", "2",
            ]
        )
        assert code == 2
        assert "--keep-checkpoints needs --checkpoint" in capsys.readouterr().err

    def test_serve_needs_a_horizon(self, demand_path, capsys):
        assert main(["serve", "--demand-json", demand_path]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_checkpoint_every_needs_a_checkpoint_path(self, demand_path, capsys):
        code = main(
            ["serve", "--demand-json", demand_path, "--jobs", "4",
             "--checkpoint-every", "1"]
        )
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestRunMetricsOut:
    def test_matches_the_plain_run(self, tmp_path, demand_path):
        plain_out = str(tmp_path / "plain.json")
        stream_out = str(tmp_path / "stream.json")
        base = ["run", "--demand-json", demand_path, "--solver", "online",
                "--order", "sequential"]
        assert main(base + ["--json", plain_out]) == 0
        assert main(
            base
            + [
                "--metrics-out", str(tmp_path / "metrics.jsonl"),
                "--window", "3",
                "--json", stream_out,
            ]
        ) == 0
        plain = json.loads((tmp_path / "plain.json").read_text())
        stream = json.loads((tmp_path / "stream.json").read_text())
        assert stream["jobs_served"] == plain["jobs_served"]
        assert stream["max_vehicle_energy"] == plain["max_vehicle_energy"]
        assert stream["messages"] == plain["extras"]["messages"]
        assert stream["events_processed"] == plain["extras"]["events_processed"]
        assert (tmp_path / "metrics.jsonl").read_text().strip()

    def test_rejected_for_non_messaging_solvers(self, demand_path, capsys):
        code = main(
            ["run", "--demand-json", demand_path, "--solver", "greedy",
             "--metrics-out", "unused.jsonl"]
        )
        assert code == 2
        assert "online" in capsys.readouterr().err
