"""Gossip monitoring through the streaming service harness.

Checkpoints must capture the whole epidemic-detector state -- per-vehicle
gossip counters, accumulated silence reports, pending suspicions, the
crash-round ledger, and the detection-latency digest -- so a service
interrupted mid-suspicion and resumed reproduces the uninterrupted run
exactly (same ``result_hash``, same ``fleet_digest``), Byzantine watchers
and lossy channels included.
"""

from __future__ import annotations

import pytest

from repro.api.service import ServiceConfig
from repro.core.demand import DemandMap
from repro.distsim.transport import TransportSpec
from repro.service import resume_service, run_service
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import alternating_arrivals

GRID = DemandMap({(x, y): 2.0 for x in range(4) for y in range(4)})

GOSSIP_KWARGS = dict(
    omega=4.0,
    capacity=64.0,
    fleet=FleetConfig(monitoring="gossip"),
    dead_vehicles=((0, 0),),
    recovery_rounds=12,
    window_jobs=6,
    checkpoint_every=1,
)


def _interrupt_and_resume(config, tmp_path, stop_after=2):
    jobs = alternating_arrivals(GRID)
    full = run_service(config, list(jobs.jobs))
    snapshot = tmp_path / "snap.json"
    partial = run_service(
        config,
        list(jobs.jobs),
        checkpoint_path=str(snapshot),
        stop_after_checkpoints=stop_after,
    )
    resumed = resume_service(str(snapshot), list(jobs.jobs))
    return full, partial, resumed


class TestServiceConfigRoundTrip:
    def test_gossip_fleet_and_byzantine_watchers_survive_json(self):
        config = ServiceConfig.from_demand(
            GRID,
            fleet=FleetConfig(
                monitoring="gossip", gossip_fanout=3, suspicion_threshold=3, quorum=2
            ),
            byzantine_watchers=((1, 1), (2, 2)),
        )
        restored = ServiceConfig.from_json(config.to_json())
        assert restored == config
        assert restored.byzantine_watchers == ((1, 1), (2, 2))
        fleet = restored.fleet_config()
        assert fleet.monitoring == "gossip"
        assert fleet.gossip_fanout == 3
        assert fleet.quorum == 2

    def test_default_config_json_is_untouched(self):
        # No gossip, no byzantine watchers: the serialized form (and with
        # it every pre-gossip config hash) must not mention the new keys.
        config = ServiceConfig.from_demand(GRID)
        payload = config.to_json()
        assert "byzantine_watchers" not in payload
        assert "gossip" not in str(payload)

    def test_failure_plan_marks_the_watchers(self):
        config = ServiceConfig.from_demand(GRID, byzantine_watchers=((1, 1),))
        plan = config.failure_plan()
        assert plan.is_byzantine_watcher((1, 1))
        assert not plan.is_byzantine_watcher((2, 2))


class TestGossipResumeExactness:
    def test_gossip_run(self, tmp_path):
        config = ServiceConfig.from_demand(GRID, **GOSSIP_KWARGS)
        full, partial, resumed = _interrupt_and_resume(config, tmp_path)
        assert partial.interrupted
        assert resumed.resumed and not resumed.interrupted
        assert resumed.result_hash() == full.result_hash()
        assert resumed.fleet_digest == full.fleet_digest

    def test_gossip_run_with_loss_and_byzantine_watcher(self, tmp_path):
        config = ServiceConfig.from_demand(
            GRID,
            transport=TransportSpec(kind="lossy", params=(("loss", 0.1), ("seed", 3))),
            byzantine_watchers=((1, 1),),
            **GOSSIP_KWARGS,
        )
        full, partial, resumed = _interrupt_and_resume(config, tmp_path)
        assert partial.interrupted
        assert resumed.result_hash() == full.result_hash()
        assert resumed.fleet_digest == full.fleet_digest
        # The detector really ran across the cut.
        assert full.suspicions >= 1
        assert full.refused_attestations >= 1

    def test_gossip_result_carries_detector_fields(self, tmp_path):
        config = ServiceConfig.from_demand(GRID, **GOSSIP_KWARGS)
        jobs = alternating_arrivals(GRID)
        result = run_service(config, list(jobs.jobs))
        assert result.monitoring_mode == "gossip"
        assert result.detections == 1
        assert result.detection_p50 >= 1.0
        assert result.suspicions >= 1
        assert result.attestations >= 2

    def test_ring_result_hash_fields_are_unchanged(self, tmp_path):
        # The new detector fields ride outside _HASHED_FIELDS: a plain ring
        # service run still hashes to what it hashed before this feature.
        config = ServiceConfig.from_demand(
            GRID, omega=4.0, capacity=64.0, fleet=FleetConfig(monitoring=True)
        )
        jobs = alternating_arrivals(GRID)
        result = run_service(config, list(jobs.jobs))
        assert result.monitoring_mode == "ring"
        from repro.api.service import _HASHED_FIELDS

        for name in ("monitoring_mode", "suspicions", "detections", "detection_p50"):
            assert name not in _HASHED_FIELDS
