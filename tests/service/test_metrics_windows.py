"""Windowed metrics: rollups equal batch totals, windows sum to the run.

The recorder only *reads* fleet counters at window boundaries, so metrics
must never perturb the event stream, and its rollup is read off the same
cumulative counters the batch driver reports -- equality is exact, not
approximate.
"""

from __future__ import annotations

import json

import pytest

from repro.api.service import ServiceConfig
from repro.core.demand import DemandMap
from repro.core.online import run_online
from repro.service import LatencyDigest, run_service
from repro.workloads.arrivals import alternating_arrivals

DEMAND = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (5, 4): 2.0, (1, 6): 5.0})


class TestRollupEqualsBatchTotals:
    def test_rollup_matches_the_batch_counters(self):
        jobs = alternating_arrivals(DEMAND)
        batch = run_online(jobs)
        service = run_service(
            ServiceConfig.from_demand(DEMAND, window_jobs=3), list(jobs.jobs)
        )
        rollup = service.rollup
        assert rollup["jobs_arrived"] == batch.jobs_total
        assert rollup["jobs_served"] == batch.jobs_served
        assert rollup["messages"] == batch.messages
        assert rollup["replacements"] == batch.replacements
        assert rollup["heartbeat_rounds"] == batch.heartbeat_rounds
        assert rollup["max_vehicle_energy"] == batch.max_vehicle_energy
        assert rollup["travel"] == batch.total_travel
        assert rollup["service"] == batch.total_service

    def test_window_deltas_sum_to_the_rollup(self, tmp_path):
        jobs = alternating_arrivals(DEMAND)
        metrics = tmp_path / "metrics.jsonl"
        service = run_service(
            ServiceConfig.from_demand(DEMAND, window_jobs=3),
            list(jobs.jobs),
            metrics_path=str(metrics),
        )
        lines = [json.loads(line) for line in metrics.read_text().splitlines()]
        windows = [line for line in lines if line["type"] == "metrics_window"]
        rollups = [line for line in lines if line["type"] == "metrics_rollup"]
        assert len(windows) == service.windows
        assert len(rollups) == 1
        for name in ("jobs", "served", "messages", "replacements", "travel"):
            total = sum(window[name] for window in windows)
            key = {"jobs": "jobs_arrived", "served": "jobs_served"}.get(name, name)
            assert total == pytest.approx(service.rollup[key])

    def test_metrics_emission_does_not_perturb_the_run(self, tmp_path):
        jobs = alternating_arrivals(DEMAND)
        config = ServiceConfig.from_demand(DEMAND, window_jobs=3)
        plain = run_service(config, list(jobs.jobs))
        with_metrics = run_service(
            config, list(jobs.jobs), metrics_path=str(tmp_path / "m.jsonl")
        )
        assert with_metrics.result_hash() == plain.result_hash()
        assert with_metrics.fleet_digest == plain.fleet_digest

    def test_window_records_have_latency_percentiles(self, tmp_path):
        jobs = alternating_arrivals(DEMAND)
        metrics = tmp_path / "metrics.jsonl"
        run_service(
            ServiceConfig.from_demand(DEMAND, window_jobs=4),
            list(jobs.jobs),
            metrics_path=str(metrics),
        )
        first = json.loads(metrics.read_text().splitlines()[0])
        for key in ("latency_p50", "latency_p90", "latency_p99"):
            assert key in first
        assert first["latency_p50"] <= first["latency_p99"]


class TestLatencyDigest:
    def test_exact_on_small_inputs(self):
        digest = LatencyDigest(capacity=8)
        for value in (0.0, 0.0, 1.0, 2.0, 2.0, 2.0):
            digest.add(value)
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(0.5) == 1.0
        assert digest.quantile(1.0) == 2.0

    def test_bounded_capacity_under_many_inserts(self):
        digest = LatencyDigest(capacity=4)
        for k in range(1000):
            digest.add(float(k % 17))
        assert len(digest.to_json()["centroids"]) <= 4
        assert digest.count == 1000

    def test_deterministic_and_json_round_trip(self):
        first, second = LatencyDigest(capacity=4), LatencyDigest(capacity=4)
        for k in range(100):
            first.add(float(k % 7))
            second.add(float(k % 7))
        assert first.to_json() == second.to_json()
        restored = LatencyDigest.from_json(first.to_json())
        assert restored.to_json() == first.to_json()
        assert restored.quantile(0.9) == first.quantile(0.9)

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            LatencyDigest(capacity=1)

    def test_p0_and_p100_are_exact_under_centroid_merging(self):
        # Regression: at capacity the two closest centroids merge into a
        # weight-averaged value, so the first centroid of {1,2,3,4,100} at
        # capacity 4 is 1.5 -- quantile(0.0) must still return the true
        # minimum, and quantile(1.0) the true maximum.
        digest = LatencyDigest(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            digest.add(value)
        assert digest.to_json()["centroids"][0][0] != 1.0  # merging happened
        assert digest.quantile(0.0) == 1.0
        assert digest.quantile(1.0) == 100.0

    def test_extremes_survive_a_json_round_trip(self):
        digest = LatencyDigest(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            digest.add(value)
        restored = LatencyDigest.from_json(digest.to_json())
        assert restored.quantile(0.0) == 1.0
        assert restored.quantile(1.0) == 100.0
        assert restored.to_json() == digest.to_json()

    def test_legacy_payload_without_extremes_still_loads(self):
        payload = {"capacity": 4, "centroids": [[1.5, 2.0], [3.5, 2.0]]}
        restored = LatencyDigest.from_json(payload)
        assert restored.quantile(0.0) == 1.5
        assert restored.quantile(1.0) == 3.5
