"""Streaming service runs are byte-identical to the batch online driver.

The service harness shares the batch per-job service logic and merely
changes *when* arrivals are scheduled (bounded look-ahead instead of
up-front).  On any finite sequence the two must therefore agree on every
physical and protocol counter -- energies, messages, replacements,
events processed, final clock -- not just on aggregate feasibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.service import ServiceConfig
from repro.core.demand import DemandMap
from repro.core.online import run_online
from repro.distsim.failures import ChurnSpec
from repro.distsim.transport import TransportSpec
from repro.service import run_service
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import alternating_arrivals, streaming_arrivals
from repro.workloads.library import family_config

#: Every OnlineResult field the two drivers share, physical and protocol.
COMPARABLE = (
    "jobs_total",
    "jobs_served",
    "feasible",
    "max_vehicle_energy",
    "total_travel",
    "total_service",
    "omega",
    "omega_star",
    "capacity",
    "theorem_capacity",
    "replacements",
    "searches",
    "failed_replacements",
    "messages",
    "messages_dropped",
    "messages_corrupted",
    "heartbeat_rounds",
    "escalations",
    "escalated_replacements",
    "adoptions",
    "events_processed",
    "sim_time",
    "transport",
)


def assert_equivalent(batch, service):
    diffs = {
        name: (getattr(batch, name), getattr(service, name))
        for name in COMPARABLE
        if getattr(batch, name) != getattr(service, name)
    }
    assert not diffs, f"streaming diverged from batch: {diffs}"


class TestQuietRun:
    def test_all_counters_match_batch(self):
        demand = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (5, 4): 2.0, (1, 6): 5.0})
        jobs = alternating_arrivals(demand)
        batch = run_online(jobs)
        service = run_service(
            ServiceConfig.from_demand(demand, window_jobs=4), list(jobs.jobs)
        )
        assert_equivalent(batch, service)
        assert service.windows == -(-len(jobs) // 4)
        assert service.fleet_digest

    def test_lookahead_window_does_not_change_the_run(self):
        demand = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (1, 6): 5.0})
        jobs = alternating_arrivals(demand)
        hashes = {
            run_service(
                ServiceConfig.from_demand(demand, lookahead=lookahead),
                list(jobs.jobs),
            ).result_hash()
            for lookahead in (1, 3, 64)
        }
        assert len(hashes) == 1


class TestFailureModesMatchBatch:
    def test_lossy_transport_churn_and_escalation(self):
        """The hardest batch configuration: loss + churn + monitoring + escalation."""
        demand = DemandMap(
            {(0, 0): 6.0, (2, 1): 5.0, (5, 4): 4.0, (1, 6): 6.0, (3, 3): 4.0}
        )
        jobs = alternating_arrivals(demand)
        fleet = FleetConfig(monitoring=True, escalation=True)
        churn = (
            ChurnSpec(time=6.5, vertex=(0, 0), action="leave"),
            ChurnSpec(time=15.5, vertex=(0, 0), action="join"),
        )
        transport = TransportSpec(kind="lossy", params=(("loss", 0.15), ("seed", 3)))
        batch = run_online(
            jobs, config=fleet, recovery_rounds=2, churn=churn, transport=transport
        )
        service = run_service(
            ServiceConfig.from_demand(
                demand,
                fleet=fleet,
                recovery_rounds=2,
                churn=churn,
                transport=transport,
                window_jobs=5,
            ),
            list(jobs.jobs),
        )
        assert_equivalent(batch, service)
        assert batch.messages_dropped > 0  # the loss stream actually fired


@pytest.mark.parametrize("family", ["hotspot", "regional-outage"])
@pytest.mark.parametrize("solver", ["online", "online-broken"])
class TestFamilySolverEquivalence:
    """Per family x solver: the service mirror of ``_run_online_family``."""

    def test_streaming_matches_batch(self, family, solver):
        config = family_config(family, solver, seed=0, preset="small")
        jobs = config.scenario.jobs()
        broken = solver == "online-broken"
        failures = config.failures
        batch = run_online(
            jobs,
            omega=config.omega,
            capacity=config.capacity,
            config=FleetConfig(monitoring=broken, escalation=config.escalation),
            rng=np.random.default_rng(config.scenario.seed),
            failure_plan=failures.to_plan() if broken else None,
            dead_vehicles=failures.crashed if broken else None,
            recovery_rounds=config.recovery_rounds,
            churn=failures.churn_events() if broken else None,
            transport=config.effective_transport(),
        )
        service = run_service(
            ServiceConfig.from_demand(
                jobs.demand_map(),
                omega=config.omega,
                capacity=config.capacity,
                fleet={"monitoring": broken, "escalation": config.escalation},
                recovery_rounds=config.recovery_rounds,
                transport=config.effective_transport(),
                churn=failures.churn_events() if broken else (),
                dead_vehicles=failures.crashed if broken else (),
                suppressed=failures.suppressed if broken else (),
                partitions=failures.partitions if broken else (),
                seed=config.scenario.seed,
            ),
            jobs.jobs,
        )
        assert_equivalent(batch, service)


class TestStreamingArrivalsGenerator:
    def test_bounded_stream_cycles_positions(self):
        demand = DemandMap({(0, 0): 2.0, (1, 1): 1.0})
        produced = list(streaming_arrivals(demand, jobs=7))
        assert len(produced) == 7
        assert [job.time for job in produced] == [float(k + 1) for k in range(7)]
        assert len({job.position for job in produced}) == 2

    def test_deterministic_across_iterations(self):
        demand = DemandMap({(0, 0): 2.0, (1, 1): 1.0})
        first = [(j.time, j.position) for j in streaming_arrivals(demand, jobs=9)]
        second = [(j.time, j.position) for j in streaming_arrivals(demand, jobs=9)]
        assert first == second

    def test_unbounded_stream_is_lazy(self):
        demand = DemandMap({(0, 0): 1.0})
        stream = streaming_arrivals(demand)
        assert [next(stream).time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(streaming_arrivals(DemandMap({(0, 0): 1.0}), jobs=-1))
        with pytest.raises(ValueError):
            next(iter(streaming_arrivals(DemandMap({}))))
