"""Protocol-level tests for the cross-cube escalation extension.

The intra-cube protocol is pinned by ``test_protocol.py``; this module
covers the new arrows: boundary queries across cube boundaries, the
star-shaped deficit counting at the escalating initiator, idle migration
vs. spare-battery adoption, the fleet-wide watch ring, and the starvation
timeout of escalated rounds under loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandMap, JobSequence
from repro.core.online import run_online
from repro.distsim.transport import LossyTransport
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.vehicles.state import WorkingState


def _spread_demand(side=3, stride=3, per_point=2.0):
    return DemandMap(
        {(stride * x, stride * y): per_point for x in range(side) for y in range(side)}
    )


def _fleet(demand=None, *, escalation=True, capacity=24.0, **config):
    demand = demand if demand is not None else _spread_demand()
    return Fleet(
        demand,
        1.0,
        FleetConfig(
            capacity=capacity, monitoring=True, escalation=escalation, **config
        ),
    )


class TestHierarchyWiring:
    def test_singleton_cubes_are_all_active_with_no_idle_peers(self):
        fleet = _fleet()
        assert all(
            vehicle.status.working == WorkingState.ACTIVE
            for vehicle in fleet.vehicles.values()
        )
        assert all(not vehicle.neighbors for vehicle in fleet.vehicles.values())

    def test_escalation_targets_cover_every_other_cube(self):
        fleet = _fleet()
        origin = fleet.vehicles[(0, 0)]
        covered = set()
        for level in range(1, fleet.hierarchy.levels + 1):
            covered.update(
                fleet.escalation_targets(origin.cube_index, level, exclude=origin.identity)
            )
        assert covered == set(fleet.vehicles) - {origin.identity}

    def test_fleet_wide_watch_ring_closes(self):
        fleet = _fleet()
        ring = fleet.watch_ring
        assert ring is not None
        start = next(iter(sorted(ring)))
        seen = set()
        current = start
        while current not in seen:
            seen.add(current)
            current = ring[current]
        assert seen == set(ring)  # one cycle covering every pair

    def test_escalation_off_keeps_cube_local_monitoring(self):
        fleet = _fleet(escalation=False)
        assert fleet.watch_ring is None
        # Singleton cubes: nothing to watch, the historical blind spot.
        assert all(
            vehicle.monitored_pair is None for vehicle in fleet.vehicles.values()
        )


class TestEscalatedReplacement:
    def test_dead_singleton_pair_is_adopted_across_cubes(self):
        demand = _spread_demand()
        jobs = JobSequence.from_positions(sorted(demand.support()) * 2)
        result = run_online(
            jobs,
            omega=1.0,
            capacity=24.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=6,
        )
        assert result.feasible
        assert result.escalations >= 1
        assert result.adoptions >= 1
        assert result.replacements >= 1

    def test_without_escalation_the_same_run_abandons_jobs(self):
        demand = _spread_demand()
        jobs = JobSequence.from_positions(sorted(demand.support()) * 2)
        result = run_online(
            jobs,
            omega=1.0,
            capacity=24.0,
            config=FleetConfig(monitoring=True, escalation=False),
            dead_vehicles=[(0, 0)],
            recovery_rounds=6,
        )
        assert not result.feasible
        assert result.escalations == 0

    def test_idle_vehicle_migrates_in_preference_to_adoption(self):
        # omega=2 makes 2x2 cubes with idle white vertices.  Every vehicle
        # of the first cube except its (0, 0) active one is dead, so when
        # that vehicle exhausts itself the intra-cube flood finds only dead
        # radios and must cross the boundary -- where the second cube's
        # *idle* vehicles volunteer and win over any active spare.
        demand = DemandMap({(0, 0): 4.0, (4, 0): 1.0})
        jobs = JobSequence.from_positions([(0, 0)] * 4 + [(4, 0)])
        result = run_online(
            jobs,
            omega=2.0,
            capacity=5.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 1), (1, 0), (1, 1)],
            recovery_rounds=6,
        )
        assert result.feasible
        assert result.escalations >= 1
        assert result.replacements >= 1
        # The replacement migrated (idle takeover), not adopted: idle
        # volunteers win the candidate ordering.
        assert result.adoptions == 0

    def test_escalated_searches_count_in_stats(self):
        demand = _spread_demand()
        fleet_jobs = JobSequence.from_positions(sorted(demand.support()))
        result = run_online(
            fleet_jobs,
            omega=1.0,
            capacity=24.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=6,
        )
        assert result.escalation is True
        # Successes are counted at the endpoint, on acceptance: they can
        # never exceed the escalations started, and here (reliable channel,
        # willing volunteers) at least one lands.
        assert 1 <= result.escalated_replacements <= result.escalations


class TestEscalationUnderLoss:
    def test_starved_escalation_terminates_under_loss(self):
        """Boundary replies may be lost; the starvation clock must keep
        escalated rounds from hanging forever.  Service may degrade (a
        job's retry can fire before the lossy search completes) but the run
        terminates with consistent counters and most jobs served."""
        demand = _spread_demand()
        jobs = JobSequence.from_positions(sorted(demand.support()) * 2)
        result = run_online(
            jobs,
            omega=1.0,
            capacity=24.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=8,
            transport=LossyTransport(loss=0.1, seed=11),
        )
        assert result.messages_dropped > 0
        assert result.escalations >= 1
        assert result.jobs_total - 1 <= result.jobs_served <= result.jobs_total

    def test_retransmit_restores_full_service_over_the_same_loss(self):
        """The reliability wrapper is the designed remedy: the same lossy
        channel behind per-message retransmission serves every job."""
        from repro.distsim.transport import TransportSpec

        demand = _spread_demand()
        jobs = JobSequence.from_positions(sorted(demand.support()) * 2)
        result = run_online(
            jobs,
            omega=1.0,
            capacity=24.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=8,
            transport=TransportSpec(
                "retransmit",
                {
                    "inner": {"kind": "lossy", "params": {"loss": 0.1, "seed": 11}},
                    "retries": 4,
                    "timeout": 0.01,
                },
            ),
        )
        assert result.transport == "retransmit"
        assert result.jobs_served == result.jobs_total

    def test_lossy_escalation_is_deterministic(self):
        demand = _spread_demand()
        jobs = JobSequence.from_positions(sorted(demand.support()) * 2)

        def once():
            return run_online(
                jobs,
                omega=1.0,
                capacity=24.0,
                config=FleetConfig(monitoring=True, escalation=True),
                dead_vehicles=[(0, 0)],
                recovery_rounds=8,
                transport=LossyTransport(loss=0.15, seed=3),
            )

        first, second = once(), once()
        assert first.jobs_served == second.jobs_served
        assert first.vehicle_energies == second.vehicle_energies
        assert first.messages == second.messages


class TestAdoptionBookkeeping:
    def test_adopter_serves_and_heartbeats_for_both_pairs(self):
        demand = _spread_demand(side=2, stride=3)
        positions = sorted(demand.support())
        jobs = JobSequence.from_positions(positions + [(0, 0)] + positions)
        result = run_online(
            jobs,
            omega=1.0,
            capacity=30.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=6,
        )
        assert result.feasible
        assert result.adoptions == 1
        # Exactly one escalated replacement; no replacement storm (the
        # activation notice reset the other watchers' timers).
        assert result.replacements == 1

    def test_adopter_walk_energy_is_charged(self):
        demand = _spread_demand(side=2, stride=4)
        jobs = JobSequence.from_positions(sorted(demand.support()) + [(0, 0)])
        result = run_online(
            jobs,
            omega=1.0,
            capacity=30.0,
            config=FleetConfig(monitoring=True, escalation=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=6,
        )
        assert result.feasible
        # Someone paid the cross-cube walk (distance 4) on top of service.
        assert result.total_travel >= 4.0


class TestCorruptionGuardWithEscalation:
    def test_plain_move_with_foreign_pair_key_is_still_refused(self):
        """Escalation must not re-open PR 3's Byzantine guard: a NON-escalated
        move order naming a real pair of another cube can only be corruption
        and is refused even though escalation is on."""
        from repro.vehicles.messages import MoveMessage
        from repro.vehicles.state import WorkingState

        fleet = _fleet(DemandMap({(0, 0): 2.0, (3, 0): 2.0}), capacity=20.0)
        victim = fleet.vehicles[(3, 0)]
        victim.status.working = WorkingState.IDLE  # force an idle endpoint
        victim.pair_key = None
        failed_before = fleet.stats.failed_replacements
        # tag unseen by the victim; pair key (0, 0) is real but foreign.
        victim._on_move(
            (0, 0), MoveMessage(((9, 9), 1), (0, 0), (0, 0), (0, 0), escalated=False)
        )
        assert fleet.stats.failed_replacements == failed_before + 1
        assert victim.status.working == WorkingState.IDLE  # untouched

    def test_escalated_move_with_foreign_pair_key_is_accepted(self):
        from repro.vehicles.messages import MoveMessage
        from repro.vehicles.state import WorkingState

        fleet = _fleet(DemandMap({(0, 0): 2.0, (3, 0): 2.0}), capacity=20.0)
        victim = fleet.vehicles[(3, 0)]
        victim.status.working = WorkingState.IDLE
        victim.pair_key = None
        victim._on_move(
            (0, 0), MoveMessage(((9, 9), 1), (0, 0), (0, 0), (0, 0), escalated=True)
        )
        assert victim.status.working == WorkingState.ACTIVE
        assert victim.pair_key == (0, 0)
        assert fleet.registry[(0, 0)] == (3, 0)


class TestRehomingRewiresTheGraph:
    def test_migrant_floods_its_new_cube(self):
        """A rehomed vehicle's intra-cube communication graph must belong to
        its new cube -- an intra-cube query may never cross a boundary."""
        demand = DemandMap({(0, 0): 2.0, (6, 0): 2.0, (6, 1): 2.0})
        fleet = _fleet(demand, capacity=30.0)
        # omega=1 builds singleton cubes here; rehome (0, 0) onto (6, 0).
        vehicle = fleet.vehicles[(0, 0)]
        vehicle.position = (6, 0)
        fleet.rehome_vehicle(vehicle, (6, 0))
        assert vehicle.cube_index == fleet.cube_grid.cube_index((6, 0))
        assert vehicle.coloring is fleet.colorings[vehicle.cube_index]
        new_cube_points = set(vehicle.coloring.cube.points())
        assert set(vehicle.neighbors) <= new_cube_points
        assert set(vehicle.cube_peers) <= new_cube_points
        assert (0, 0) not in vehicle.neighbors
