"""Tests for fleet construction and basic job routing."""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.vehicles.state import WorkingState


def point_fleet(total: float = 6.0, capacity=None, omega: float = 3.0, **kwargs) -> Fleet:
    """A fleet for a single demand point at the origin with a 3-cube."""
    demand = DemandMap({(0, 0): total})
    config = FleetConfig(capacity=capacity, **kwargs)
    return Fleet(demand, omega, config)


class TestConstruction:
    def test_requires_nonempty_demand(self):
        with pytest.raises(ValueError):
            Fleet(DemandMap({}, dim=2), 1.0)

    def test_requires_positive_omega(self):
        with pytest.raises(ValueError):
            Fleet(DemandMap({(0, 0): 1.0}), 0.0)

    def test_one_vehicle_per_cube_vertex(self):
        fleet = point_fleet(omega=3.0)
        # A single 3x3 cube around the origin.
        assert len(fleet.vehicles) == 9
        assert fleet.cube_side == 3

    def test_only_cubes_with_demand_get_vehicles(self):
        demand = DemandMap({(0, 0): 2.0, (10, 10): 2.0})
        fleet = Fleet(demand, 2.0, FleetConfig())
        # Two separate 2x2 cubes -> 8 vehicles.
        assert len(fleet.vehicles) == 8

    def test_exactly_one_active_vehicle_per_pair(self):
        fleet = point_fleet(omega=4.0)
        active = [v for v in fleet.vehicles.values() if v.status.working == WorkingState.ACTIVE]
        coloring = next(iter(fleet.colorings.values()))
        assert len(active) == coloring.num_pairs()
        assert len(fleet.registry) == coloring.num_pairs()

    def test_registry_points_to_black_vertices_initially(self):
        fleet = point_fleet(omega=3.0)
        for pair_key, identity in fleet.registry.items():
            assert identity == pair_key

    def test_neighbors_symmetric_and_within_radius(self):
        fleet = point_fleet(omega=3.0)
        from repro.grid.lattice import manhattan

        for vehicle in fleet.vehicles.values():
            for neighbor in vehicle.neighbors:
                assert manhattan(vehicle.home, neighbor) <= fleet.config.neighbor_radius
                assert vehicle.home in fleet.vehicles[neighbor].neighbors

    def test_fractional_omega_rounds_cube_side_up(self):
        fleet = point_fleet(omega=2.4)
        assert fleet.cube_side == 3


class TestJobRouting:
    def test_pair_key_of_known_positions(self):
        fleet = point_fleet(omega=3.0)
        pair_key = fleet.pair_key_of((0, 0))
        assert pair_key in fleet.registry

    def test_pair_key_outside_built_cubes_raises(self):
        fleet = point_fleet(omega=3.0)
        with pytest.raises(KeyError):
            fleet.pair_key_of((50, 50))

    def test_deliver_job_serves_and_charges_energy(self):
        fleet = point_fleet(total=3.0, capacity=10.0)
        assert fleet.deliver_job((0, 0))
        vehicle = fleet.responsible_vehicle((0, 0))
        assert vehicle is not None
        assert vehicle.jobs_served >= 1
        assert fleet.max_energy_used() >= 1.0

    def test_job_at_white_vertex_served_by_adjacent_black_vehicle(self):
        demand = DemandMap({(0, 1): 2.0})
        fleet = Fleet(demand, 2.0, FleetConfig(capacity=10.0))
        pair_key = fleet.pair_key_of((0, 1))
        assert fleet.deliver_job((0, 1))
        server = fleet.vehicles[fleet.registry[pair_key]]
        # Walked at most distance one and spent one unit serving.
        assert server.travel_energy <= 1.0
        assert server.service_energy == 1.0

    def test_unserved_job_counted(self):
        fleet = point_fleet(total=5.0, capacity=0.5)  # cannot even serve one job
        served = fleet.deliver_job((0, 0))
        assert not served
        assert fleet.stats.jobs_unserved == 1

    def test_statistics_accumulate(self):
        fleet = point_fleet(total=4.0, capacity=20.0)
        for _ in range(4):
            fleet.deliver_job((0, 0))
        assert fleet.stats.jobs_delivered == 4
        assert fleet.total_service() == pytest.approx(4.0)
        assert fleet.total_travel() == pytest.approx(0.0)

    def test_crash_vehicle_requires_known_identity(self):
        fleet = point_fleet()
        with pytest.raises(KeyError):
            fleet.crash_vehicle((99, 99))

    def test_active_vehicle_count(self):
        fleet = point_fleet(omega=3.0)
        assert fleet.active_vehicle_count() == len(fleet.registry)
