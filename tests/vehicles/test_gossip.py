"""Gossip failure detection with quorum-attested replacement.

The epidemic detector (``FleetConfig(monitoring="gossip")``) replaces the
Section 3.2.5 heartbeat ring's single-watcher initiation with a three-step
accountable pipeline: digests piggyback recently-heard ``(pair, round)``
entries to ``gossip_fanout`` deterministically-seeded peers; a watcher
opens a suspicion only after ``suspicion_threshold`` independent silent
reports; replacement starts only after ``quorum`` co-signatures.  The
quorum masks up to ``quorum - 1`` Byzantine watchers: liars can flood
suspicions, but honest peers refuse to co-sign for pairs they still hear.
"""

from __future__ import annotations

import pytest

from repro.api import ConfigError, ExperimentEngine, FailureSpec, RunConfig, ScenarioSpec
from repro.core.demand import DemandMap, JobSequence
from repro.core.online import _run_events, provision_fleet, run_online
from repro.distsim.failures import FailurePlan
from repro.distsim.transport import TransportSpec, build_transport
from repro.vehicles.fleet import FleetConfig
from repro.vehicles.gossip import GOSSIP_ENTRY_CAP, freshest_entries, select_peers

#: One 4-cube under omega=4: eight pairs, so every cube has enough honest
#: watchers for any reasonable suspicion threshold and quorum.
DEMAND = DemandMap({(x, y): 2.0 for x in range(4) for y in range(4)})
JOBS = JobSequence.from_positions(sorted(DEMAND.support()) * 2)
LOSSY = TransportSpec("lossy", {"loss": 0.1, "seed": 3})


def _gossip_fleet(dead=((0, 0),), *, transport=None, **knobs):
    plan = FailurePlan()
    config = FleetConfig(monitoring="gossip", **knobs)
    fleet, fleet_config, _, _ = provision_fleet(
        DEMAND,
        omega=4.0,
        capacity=64.0,
        config=config,
        dead_vehicles=list(dead),
        failure_plan=plan,
        transport=build_transport(transport) if transport is not None else None,
    )
    return fleet, fleet_config


def _run(fleet, fleet_config, recovery_rounds=12):
    return _run_events(fleet, fleet_config, JOBS, recovery_rounds, (), fleet.failure_plan)


def _pair_holders(fleet):
    pairs = sorted(
        {v.pair_key for v in fleet.vehicles.values() if v.pair_key is not None}
    )
    return {p: fleet.registry.get(p) for p in pairs}


def _live_watchers(fleet, *, excluding=()):
    return sorted(
        v.identity
        for v in fleet.vehicles.values()
        if v.monitored_pair is not None
        and not v.broken
        and v.monitored_pair not in excluding
    )


class TestPeerSelection:
    CANDIDATES = [(x, y) for x in range(5) for y in range(5)]

    def test_deterministic(self):
        a = select_peers((1, 2), 7, self.CANDIDATES, 3)
        b = select_peers((1, 2), 7, self.CANDIDATES, 3)
        assert a == b

    def test_never_selects_self_and_never_repeats(self):
        for counter in range(40):
            peers = select_peers((2, 2), counter, self.CANDIDATES, 4)
            assert (2, 2) not in peers
            assert len(peers) == len(set(peers)) == 4

    def test_counter_varies_the_selection(self):
        draws = {
            tuple(select_peers((0, 0), c, self.CANDIDATES, 2)) for c in range(20)
        }
        assert len(draws) > 1

    def test_fanout_larger_than_pool_takes_everyone_else(self):
        pool = [(0, 0), (0, 1), (1, 0)]
        peers = select_peers((0, 0), 0, pool, 10)
        assert sorted(peers) == [(0, 1), (1, 0)]

    def test_identity_varies_the_selection(self):
        draws = {
            tuple(select_peers(identity, 0, self.CANDIDATES, 2))
            for identity in self.CANDIDATES[:10]
        }
        assert len(draws) > 1


class TestFreshestEntries:
    def test_orders_by_round_then_pair_and_caps(self):
        heard = {(i, 0): i for i in range(GOSSIP_ENTRY_CAP + 4)}
        entries = freshest_entries(heard)
        assert len(entries) == GOSSIP_ENTRY_CAP
        rounds = [round_id for _, round_id in entries]
        assert rounds == sorted(rounds, reverse=True)

    def test_ties_break_on_pair_key(self):
        heard = {(1, 0): 5, (0, 1): 5, (0, 0): 5}
        entries = freshest_entries(heard)
        assert entries == (((0, 0), 5), ((0, 1), 5), ((1, 0), 5))


class TestFleetConfigValidation:
    def test_rejects_unknown_monitoring_mode(self):
        with pytest.raises(ValueError, match="monitoring"):
            FleetConfig(monitoring="broadcast")

    def test_rejects_quorum_above_suspicion_threshold(self):
        with pytest.raises(ValueError, match="quorum"):
            FleetConfig(monitoring="gossip", suspicion_threshold=2, quorum=3)

    def test_rejects_gossip_with_escalation(self):
        with pytest.raises(ValueError, match="escalation"):
            FleetConfig(monitoring="gossip", escalation=True)

    def test_rejects_non_positive_knobs(self):
        for knob in ("gossip_fanout", "suspicion_threshold", "quorum"):
            with pytest.raises(ValueError, match=knob):
                FleetConfig(monitoring="gossip", **{knob: 0})

    def test_ring_spelling_keeps_truthiness(self):
        assert bool(FleetConfig(monitoring="ring").monitoring)
        assert bool(FleetConfig(monitoring="gossip").monitoring)
        assert not bool(FleetConfig().monitoring)


class TestCrashDetection:
    def test_crashed_pair_is_replaced(self):
        fleet, fleet_config = _gossip_fleet()
        served = _run(fleet, fleet_config)
        assert served == len(JOBS)
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))
        assert fleet.stats.suspicions >= 1
        assert fleet.stats.attestations >= fleet.config.quorum

    def test_detection_latency_is_recorded(self):
        fleet, fleet_config = _gossip_fleet()
        _run(fleet, fleet_config)
        assert fleet.detection_digest.count == 1
        assert fleet.detection_digest.quantile(0.5) >= 1.0

    def test_no_failures_means_no_suspicions(self):
        fleet, fleet_config = _gossip_fleet(dead=())
        served = _run(fleet, fleet_config, recovery_rounds=0)
        assert served == len(JOBS)
        assert fleet.stats.suspicions == 0
        assert fleet.stats.false_suspicions == 0
        assert fleet.detection_digest.count == 0

    def test_lossy_channel_still_replaces_and_serves(self):
        fleet, fleet_config = _gossip_fleet(transport=LOSSY)
        served = _run(fleet, fleet_config)
        assert served == len(JOBS)
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))


class TestQuorumMasking:
    """``quorum - 1`` Byzantine watchers cannot trigger a spurious takeover."""

    def _masked_run(self, *, transport=None, quorum=2, suspicion_threshold=2):
        fleet, fleet_config = _gossip_fleet(
            transport=transport,
            quorum=quorum,
            suspicion_threshold=suspicion_threshold,
        )
        liars = _live_watchers(fleet, excluding=((0, 0),))[: quorum - 1]
        assert len(liars) == quorum - 1
        for liar in liars:
            fleet.failure_plan.mark_byzantine_watcher(liar)
        healthy_before = {
            pair: holder
            for pair, holder in _pair_holders(fleet).items()
            if pair != (0, 0)
        }
        served = _run(fleet, fleet_config)
        healthy_after = {pair: fleet.registry.get(pair) for pair in healthy_before}
        return fleet, served, healthy_before, healthy_after

    def test_zero_spurious_takeovers_on_reliable_channel(self):
        fleet, served, before, after = self._masked_run()
        assert after == before  # nobody stole a living vehicle's pair
        assert served == len(JOBS)
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))  # real crash handled
        assert fleet.stats.false_suspicions > 0  # the liar really did lie
        assert fleet.stats.refused_attestations > 0  # honest peers refused to co-sign

    def test_zero_spurious_takeovers_under_loss(self):
        fleet, served, before, after = self._masked_run(transport=LOSSY)
        assert after == before
        assert served == len(JOBS)
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))

    def test_zero_spurious_takeovers_under_corruption(self):
        fleet, served, before, after = self._masked_run(
            transport=TransportSpec("corrupting", {"rate": 0.1, "seed": 3})
        )
        assert after == before
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))

    def test_wider_quorum_masks_two_liars(self):
        fleet, served, before, after = self._masked_run(
            quorum=3, suspicion_threshold=3
        )
        assert after == before
        assert served == len(JOBS)
        assert fleet.registry.get((0, 0)) not in (None, (0, 0))


class TestRingDetectionLatency:
    def test_ring_records_detections_too(self):
        result = run_online(
            JOBS,
            omega=4.0,
            capacity=64.0,
            config=FleetConfig(monitoring=True),
            dead_vehicles=[(0, 0)],
            recovery_rounds=8,
        )
        assert result.monitoring_mode == "ring"
        assert result.detections == 1
        assert result.detection_p50 >= 1.0

    def test_gossip_result_carries_the_accountability_counters(self):
        result = run_online(
            JOBS,
            omega=4.0,
            capacity=64.0,
            config=FleetConfig(monitoring="gossip"),
            dead_vehicles=[(0, 0)],
            recovery_rounds=12,
        )
        assert result.monitoring_mode == "gossip"
        assert result.feasible
        assert result.detections == 1
        assert result.suspicions >= 1
        assert result.attestations >= 2


class TestSolverValidation:
    def _config(self, solver="online-broken", **params):
        return RunConfig(
            solver=solver,
            scenario=ScenarioSpec.from_demand(DEMAND, name="gossip-grid"),
            capacity=64.0,
            omega=4.0,
            failures=FailureSpec(crashed=((0, 0),)) if solver == "online-broken" else None,
            recovery_rounds=12 if solver == "online-broken" else 0,
            params=params,
        )

    def test_unknown_monitoring_param_is_a_config_error(self):
        with pytest.raises(ConfigError, match="monitoring"):
            ExperimentEngine().run(self._config(monitoring="broadcast"))

    def test_quorum_above_suspicion_threshold_is_a_config_error(self):
        with pytest.raises(ConfigError, match="quorum"):
            ExperimentEngine().run(
                self._config(monitoring="gossip", suspicion_threshold=2, quorum=3)
            )

    def test_gossip_param_runs_and_fills_extras(self):
        result = ExperimentEngine().run(self._config(monitoring="gossip"))
        assert result.feasible
        assert result.extra("monitoring_mode") == "gossip"
        assert int(result.extra("detections", 0)) == 1
        assert float(result.extra("detection_p50", 0.0)) >= 1.0

    def test_byzantine_watcher_count_lands_in_extras(self):
        config = RunConfig(
            solver="online-broken",
            scenario=ScenarioSpec.from_demand(DEMAND, name="gossip-grid"),
            capacity=64.0,
            omega=4.0,
            failures=FailureSpec(
                crashed=((0, 0),), byzantine_watchers=((1, 1),)
            ),
            recovery_rounds=12,
            params={"monitoring": "gossip"},
        )
        result = ExperimentEngine().run(config)
        assert result.feasible
        assert int(result.extra("byzantine_watchers", 0)) == 1


class TestCliValidation:
    """PR 3 convention: flag misuse is a clean exit 2, never a traceback."""

    @pytest.fixture
    def demand_path(self, tmp_path):
        from repro.io.serialize import demand_to_json, save_json

        path = tmp_path / "demand.json"
        save_json(demand_to_json(DEMAND), path)
        return str(path)

    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_monitoring_rejected_on_non_transport_solver(self, demand_path, capsys):
        code = self._main(
            "run", "--demand-json", demand_path, "--solver", "greedy",
            "--monitoring", "gossip",
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_gossip_knobs_rejected_on_non_transport_solver(self, demand_path, capsys):
        code = self._main(
            "run", "--demand-json", demand_path, "--solver", "offline",
            "--quorum", "2",
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_gossip_knobs_need_gossip_monitoring(self, demand_path, capsys):
        code = self._main(
            "run", "--demand-json", demand_path, "--solver", "online",
            "--gossip-fanout", "3",
        )
        assert code == 2
        assert "--monitoring gossip" in capsys.readouterr().err

    def test_quorum_above_suspicion_threshold_is_exit_2(self, demand_path, capsys):
        code = self._main(
            "run", "--demand-json", demand_path, "--solver", "online-broken",
            "--crash", "0,0", "--recovery-rounds", "12", "--omega", "4",
            "--capacity", "64", "--monitoring", "gossip",
            "--suspicion-threshold", "2", "--quorum", "3",
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "quorum" in err

    def test_gossip_run_succeeds_on_transport_solver(self, demand_path, capsys):
        code = self._main(
            "run", "--demand-json", demand_path, "--solver", "online-broken",
            "--crash", "0,0", "--recovery-rounds", "12", "--omega", "4",
            "--capacity", "64", "--monitoring", "gossip",
            "--byzantine-watcher", "1,1",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "monitoring_mode" in out
        assert "byzantine_watchers" in out

    def test_serve_gossip_knobs_need_gossip_monitoring(self, demand_path, capsys):
        code = self._main(
            "serve", "--demand-json", demand_path, "--jobs", "8",
            "--monitoring", "ring", "--quorum", "2",
        )
        assert code == 2
        assert "--monitoring gossip" in capsys.readouterr().err

    def test_serve_runs_with_gossip_monitoring(self, demand_path, capsys):
        code = self._main(
            "serve", "--demand-json", demand_path, "--jobs", "32",
            "--omega", "4", "--capacity", "64", "--crash", "0,0",
            "--recovery-rounds", "12", "--monitoring", "gossip",
            "--gossip-fanout", "3",
        )
        assert code == 0
        assert "Service run" in capsys.readouterr().out
