"""Proactive hand-back of adopted pairs when the owner rejoins.

With ``FleetConfig(hand_back=True)``, a vehicle that adopted a far pair
during an escalated replacement offers the pair back to its revived owner
instead of carrying it forever; the owner reclaims it and the adopter
releases its monitoring duty.  The flag defaults to *off* so every
published baseline (and golden result) is unchanged.
"""

from __future__ import annotations

from repro.core.demand import DemandMap, JobSequence
from repro.core.omega import omega_c
from repro.core.online import _run_events, provision_fleet, run_online
from repro.distsim.failures import ChurnSpec
from repro.vehicles.fleet import FleetConfig

#: Nine singleton cubes under omega=1: the dead (0, 0) vehicle can only be
#: replaced by an escalated cross-cube search, which ends in an adoption.
DEMAND = DemandMap({(3 * x, 3 * y): 2.0 for x in range(3) for y in range(3)})
JOBS = JobSequence.from_positions(sorted(DEMAND.support()) * 2)
CHURN = (ChurnSpec(time=12.5, vertex=(0, 0), action="join"),)


def _fleet_after_run(hand_back: bool):
    config = FleetConfig(monitoring=True, escalation=True, hand_back=hand_back)
    fleet, fleet_config, _, _ = provision_fleet(
        DEMAND, omega=1.0, capacity=24.0, config=config, dead_vehicles=[(0, 0)]
    )
    served = _run_events(fleet, fleet_config, JOBS, 6, CHURN, fleet.failure_plan)
    return fleet, served


class TestHandBack:
    def test_revived_owner_reclaims_its_pair(self):
        fleet, served = _fleet_after_run(hand_back=True)
        assert served == len(JOBS)
        assert fleet.stats.adoptions == 1
        assert fleet.stats.hand_backs == 1
        # ownership is back where it started ...
        assert fleet.registry.get((0, 0)) == (0, 0)
        # ... and no adopter still carries the pair
        adopters = [
            vehicle.identity
            for vehicle in fleet.vehicles.values()
            if (0, 0) in vehicle.adopted_pairs
        ]
        assert adopters == []

    def test_flag_off_keeps_the_adoption(self):
        fleet, served = _fleet_after_run(hand_back=False)
        assert served == len(JOBS)
        assert fleet.stats.adoptions == 1
        assert fleet.stats.hand_backs == 0
        adopters = [
            vehicle.identity
            for vehicle in fleet.vehicles.values()
            if (0, 0) in vehicle.adopted_pairs
        ]
        assert len(adopters) == 1

    def test_both_modes_stay_feasible(self):
        for hand_back in (False, True):
            result = run_online(
                JOBS,
                omega=1.0,
                capacity=24.0,
                config=FleetConfig(
                    monitoring=True, escalation=True, hand_back=hand_back
                ),
                dead_vehicles=[(0, 0)],
                recovery_rounds=6,
                churn=CHURN,
            )
            assert result.feasible
            assert result.adoptions == 1
