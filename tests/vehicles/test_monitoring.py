"""Tests for the monitoring-pointer assignment (Section 3.2.5)."""

from __future__ import annotations

from repro.grid.coloring import Coloring
from repro.grid.lattice import Box
from repro.vehicles.monitoring import build_watch_assignment, watched_pair_key


class TestWatchedPairKey:
    def test_single_pair_cube_has_nothing_to_watch(self):
        coloring = Coloring(Box.cube((0, 0), 1))
        only_pair = coloring.pairs[0].black
        assert watched_pair_key(coloring, only_pair) is None

    def test_two_pair_cube_watches_each_other(self):
        coloring = Coloring(Box.cube((0, 0), 2))
        keys = [pair.black for pair in coloring.pairs]
        assert watched_pair_key(coloring, keys[0]) == keys[1]
        assert watched_pair_key(coloring, keys[1]) == keys[0]

    def test_watch_relation_is_a_cycle(self):
        coloring = Coloring(Box.cube((0, 0), 4))
        keys = [pair.black for pair in coloring.pairs]
        assignment = build_watch_assignment(coloring)
        # Following the pointers visits every pair exactly once before
        # returning to the start (a single cycle over all pairs).
        start = keys[0]
        seen = [start]
        current = assignment[start]
        while current != start:
            assert current is not None
            seen.append(current)
            current = assignment[current]
        assert sorted(seen) == sorted(keys)

    def test_every_pair_watched_exactly_once(self):
        coloring = Coloring(Box.cube((0, 0), 3))
        assignment = build_watch_assignment(coloring)
        watched = [target for target in assignment.values() if target is not None]
        assert len(watched) == len(set(watched))
        assert len(watched) == len(coloring.pairs)

    def test_no_pair_watches_itself(self):
        coloring = Coloring(Box.cube((0, 0), 5))
        for pair_key, watched in build_watch_assignment(coloring).items():
            assert watched != pair_key
