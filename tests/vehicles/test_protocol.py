"""End-to-end tests of the Phase I / Phase II replacement protocol.

These tests drive a small fleet directly (one cube, a single demand point)
with deliberately tiny capacities so that vehicles exhaust themselves and
the diffusing-computation machinery is genuinely exercised: queries flood
the cube, an idle vehicle is located, a move order travels down the child
path, and the pair registry is updated.
"""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.distsim.failures import FailurePlan
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.vehicles.state import TransferState, WorkingState


def run_point_workload(
    jobs: int,
    capacity: float,
    *,
    omega: float = 3.0,
    monitoring: bool = False,
    failure_plan: FailurePlan | None = None,
    recovery_rounds: int = 0,
) -> Fleet:
    """Deliver ``jobs`` unit jobs at the origin against a 3-cube fleet."""
    demand = DemandMap({(0, 0): float(jobs)})
    config = FleetConfig(capacity=capacity, monitoring=monitoring)
    fleet = Fleet(demand, omega, config, failure_plan=failure_plan)
    for _ in range(jobs):
        served = fleet.deliver_job((0, 0))
        if not served and recovery_rounds:
            for _ in range(recovery_rounds):
                fleet.run_heartbeat_round()
            fleet.retry_job((0, 0))
        if monitoring:
            fleet.run_heartbeat_round()
    return fleet


class TestNormalOperation:
    def test_all_jobs_served_without_replacement_when_capacity_ample(self):
        fleet = run_point_workload(jobs=4, capacity=50.0)
        assert fleet.stats.jobs_unserved == 0
        assert fleet.stats.replacements == 0
        assert fleet.messages_sent() == 0

    def test_replacement_triggered_when_vehicle_exhausts(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        assert fleet.stats.jobs_unserved == 0
        assert fleet.stats.done_events >= 1
        assert fleet.stats.replacements >= 1
        assert fleet.messages_sent() > 0

    def test_no_vehicle_exceeds_capacity(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        for vehicle in fleet.vehicles.values():
            assert vehicle.energy_used <= 8.0 + 1e-9

    def test_replacement_vehicle_takes_over_registry(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        pair_key = fleet.pair_key_of((0, 0))
        current = fleet.registry[pair_key]
        # The original black-vertex vehicle has been replaced at least once.
        assert current != pair_key
        assert fleet.vehicles[current].status.working == WorkingState.ACTIVE
        assert fleet.vehicles[current].position == (0, 0)

    def test_exhausted_vehicle_is_done_and_waiting(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        original = fleet.vehicles[fleet.pair_key_of((0, 0))]
        assert original.status.working == WorkingState.DONE
        assert original.status.transfer == TransferState.WAITING

    def test_protocol_quiesces_after_every_job(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        assert fleet.simulator.pending == 0

    def test_total_service_equals_jobs(self):
        fleet = run_point_workload(jobs=10, capacity=8.0)
        assert fleet.total_service() == pytest.approx(10.0)

    def test_replacements_consume_idle_vehicles(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        idle_left = sum(
            1 for v in fleet.vehicles.values() if v.status.working == WorkingState.IDLE
        )
        coloring = next(iter(fleet.colorings.values()))
        idle_initially = len(fleet.vehicles) - coloring.num_pairs()
        assert idle_left == idle_initially - fleet.stats.replacements

    def test_searches_counted(self):
        fleet = run_point_workload(jobs=12, capacity=8.0)
        assert fleet.stats.searches_started == fleet.stats.done_events

    def test_large_workload_many_replacements(self):
        fleet = run_point_workload(jobs=20, capacity=7.0)
        assert fleet.stats.jobs_unserved == 0
        assert fleet.stats.replacements >= 3


class TestScenario2InitiationFailure:
    def test_monitoring_recovers_from_suppressed_initiation(self):
        plan = FailurePlan()
        plan.suppress_initiation((0, 0))  # the first active vehicle never initiates
        fleet = run_point_workload(
            jobs=10,
            capacity=5.0,
            monitoring=True,
            failure_plan=plan,
            recovery_rounds=4,
        )
        assert fleet.stats.suppressed_initiations >= 1
        assert fleet.stats.watch_initiations >= 1
        assert fleet.stats.jobs_unserved == 0

    def test_without_monitoring_jobs_go_unserved(self):
        plan = FailurePlan()
        plan.suppress_initiation((0, 0))
        fleet = run_point_workload(
            jobs=10, capacity=5.0, monitoring=False, failure_plan=plan
        )
        assert fleet.stats.jobs_unserved > 0


class TestScenario3DeadVehicle:
    def test_monitoring_replaces_a_dead_active_vehicle(self):
        demand = DemandMap({(0, 0): 6.0})
        plan = FailurePlan()
        config = FleetConfig(capacity=30.0, monitoring=True)
        fleet = Fleet(demand, 3.0, config, failure_plan=plan)
        # Kill the active vehicle responsible for the origin's pair up front.
        fleet.crash_vehicle(fleet.registry[fleet.pair_key_of((0, 0))])
        unserved_jobs = 0
        for _ in range(6):
            served = fleet.deliver_job((0, 0))
            if not served:
                for _ in range(4):
                    fleet.run_heartbeat_round()
                if not fleet.retry_job((0, 0)):
                    unserved_jobs += 1
            fleet.run_heartbeat_round()
        assert fleet.stats.watch_initiations >= 1
        assert fleet.stats.replacements >= 1
        assert unserved_jobs == 0
        assert fleet.stats.jobs_unserved == 0

    def test_heartbeats_do_not_trigger_replacements_without_failures(self):
        fleet = run_point_workload(jobs=4, capacity=50.0, monitoring=True)
        assert fleet.stats.watch_initiations == 0
        assert fleet.stats.replacements == 0


class TestMultipleCubes:
    def test_independent_cubes_each_replace_locally(self):
        # Demand in two far-apart cubes: each cube's protocol runs on its own
        # vehicles and replacements never borrow from the other cube.
        demand = DemandMap({(0, 0): 12.0, (30, 30): 12.0})
        fleet = Fleet(demand, 3.0, FleetConfig(capacity=8.0))
        for _ in range(12):
            fleet.deliver_job((0, 0))
            fleet.deliver_job((30, 30))
        assert fleet.stats.jobs_unserved == 0
        assert fleet.stats.replacements >= 2
        # Two 3x3 cubes of vehicles were built, nothing in between.
        assert len(fleet.vehicles) == 18
        near_origin = fleet.registry[fleet.pair_key_of((0, 0))]
        far_corner = fleet.registry[fleet.pair_key_of((30, 30))]
        assert max(abs(c) for c in near_origin) <= 2
        assert min(far_corner) >= 28

    def test_jobs_at_white_vertices_served_by_pair_partner(self):
        demand = DemandMap({(0, 1): 6.0, (1, 0): 6.0})
        fleet = Fleet(demand, 3.0, FleetConfig(capacity=50.0))
        for _ in range(6):
            assert fleet.deliver_job((0, 1))
            assert fleet.deliver_job((1, 0))
        assert fleet.stats.jobs_unserved == 0
        # Every serving vehicle walked at most one step per job.
        for vehicle in fleet.vehicles.values():
            if vehicle.jobs_served:
                assert vehicle.travel_energy <= vehicle.jobs_served
