"""Unit tests for the flat-array fleet core (templates + indexed registry).

The templates must reproduce the reference per-cube computations exactly
-- same snake pairing, same neighbor graphs, same initial activity -- and
the registry's contiguous live arrays must mirror the vehicle objects
through every mutation the protocol performs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandMap, JobSequence
from repro.core.online import run_online
from repro.grid.coloring import Coloring, pair_vertices
from repro.grid.lattice import Box, manhattan
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.vehicles.registry import (
    STATE_ACTIVE,
    STATE_DONE,
    STATE_IDLE,
    adjacency_template,
    coloring_for_box,
    pairing_template,
)
from repro.vehicles.state import WorkingState

BOXES = [
    Box((0,), (4,)),
    Box((1,), (1,)),
    Box((0, 0), (2, 2)),
    Box((1, 0), (3, 2)),
    Box((3, 5), (5, 7)),
    Box((-3, -3), (-1, -1)),
    Box((0, 0), (3, 1)),
    Box((2, 3, 5), (4, 5, 7)),
    Box((1, 1, 1), (2, 2, 2)),
]


class TestPairingTemplate:
    @pytest.mark.parametrize("box", BOXES, ids=str)
    def test_pairs_match_reference_pairing(self, box):
        template = pairing_template(box.side_lengths, sum(box.lo) % 2)
        verts = list(box.points())
        got = template.pairs_for(verts)
        expected = pair_vertices(box)
        assert [(p.black, p.white) for p in got] == [
            (p.black, p.white) for p in expected
        ]

    @pytest.mark.parametrize("box", BOXES, ids=str)
    def test_initially_active_and_pair_of_vertex(self, box):
        template = pairing_template(box.side_lengths, sum(box.lo) % 2)
        coloring = Coloring(box)
        verts = list(box.points())
        for i, vertex in enumerate(verts):
            assert bool(template.active_list[i]) == coloring.initially_active(vertex)
            pair = coloring.pair_of(vertex)
            assert verts[template.pair_black_list[template.vertex_pair_list[i]]] == pair.black

    @pytest.mark.parametrize("box", BOXES, ids=str)
    def test_monitored_vertex_matches_watched_pair_key(self, box):
        from repro.vehicles.monitoring import watched_pair_key

        template = pairing_template(box.side_lengths, sum(box.lo) % 2)
        coloring = Coloring(box)
        verts = list(box.points())
        for i, vertex in enumerate(verts):
            if not template.active_list[i]:
                continue
            expected = watched_pair_key(coloring, coloring.pair_of(vertex).black)
            lex = template.monitored_list[i]
            assert (verts[lex] if lex >= 0 else None) == expected

    def test_parity_swaps_black_and_white(self):
        even = pairing_template((2, 2), 0)
        odd = pairing_template((2, 2), 1)
        assert even.pair_black_list != odd.pair_black_list


class TestAdjacencyTemplate:
    @pytest.mark.parametrize("box", BOXES, ids=str)
    @pytest.mark.parametrize("radius", [1, 3])
    def test_matches_reference_neighbor_scan(self, box, radius):
        lists = adjacency_template(box.side_lengths, radius)
        verts = list(box.points())
        for i, vertex in enumerate(verts):
            expected = [
                j
                for j, other in enumerate(verts)
                if other != vertex and manhattan(other, vertex) <= radius
            ]
            assert list(lists[i]) == expected


class TestColoringCache:
    def test_equivalent_to_direct_coloring(self):
        for box in BOXES:
            cached = coloring_for_box(box)
            direct = Coloring(box)
            assert [(p.black, p.white) for p in cached.pairs] == [
                (p.black, p.white) for p in direct.pairs
            ]
            for vertex in box.points():
                assert cached.pair_of(vertex).black == direct.pair_of(vertex).black

    def test_same_box_shares_one_instance(self):
        box = Box((10, 10), (12, 12))
        assert coloring_for_box(box) is coloring_for_box(box)


def _fleet(demand_points, *, capacity=None, monitoring=False):
    demand = DemandMap({p: 1.0 for p in demand_points})
    return Fleet(
        demand,
        omega=3.0,
        config=FleetConfig(capacity=capacity, monitoring=monitoring),
    )


class TestFleetRegistry:
    def test_static_topology_views(self):
        fleet = _fleet([(0, 0), (5, 5), (2, 7)])
        flat = fleet.flat
        assert flat.count == len(fleet.vehicles)
        # dense index <-> identity round trip, in creation order
        assert list(fleet.vehicles) == flat.identities
        for identity, index in flat.index_of.items():
            assert flat.identities[index] == identity
            assert tuple(flat.homes[index].tolist()) == identity
            assert fleet.vehicles[identity].index == index
        # pair arrays agree with the dict registries
        for key, pid in flat.pair_id_of.items():
            assert flat.pair_keys[pid] == key
            assert fleet.is_pair_key(key)
        # cube slices cover the construction-time membership
        for cube_index, cube_id in flat.cube_id_of.items():
            start, stop = flat.cube_slices[cube_id]
            assert flat.identities[start:stop] == fleet._cube_members[cube_index]

    def test_position_lookup_matches_pair_key_of(self):
        fleet = _fleet([(0, 0), (5, 5), (2, 7)])
        flat = fleet.flat
        for identity in flat.identities:
            expected = fleet.pair_key_of(identity)
            assert flat.pair_keys[flat.pair_id_at(identity)] == expected
        # vectorized form agrees, and unbuilt positions map to -1
        homes = np.asarray(flat.identities, dtype=np.int64)
        ids = flat.pair_ids_of(homes)
        assert all(
            flat.pair_keys[int(pid)] == fleet.pair_key_of(identity)
            for pid, identity in zip(ids, flat.identities)
        )
        outside = np.asarray([[999, 999]], dtype=np.int64)
        assert flat.pair_ids_of(outside).tolist() == [-1]

    def test_huge_sparse_window_uses_dict_fallback(self):
        # Two far corners make the bounding window enormous; the dense
        # position->pair array must not be allocated, and lookups must
        # still agree with the routing dict.
        fleet = _fleet([(0, 0), (3000, 3000)])
        flat = fleet.flat
        assert flat._pos_pair is None
        for identity in flat.identities:
            assert flat.pair_keys[flat.pair_id_at(identity)] == fleet.pair_key_of(
                identity
            )
        assert flat.pair_id_at((999, 999)) == -1
        homes = np.asarray(flat.identities, dtype=np.int64)
        assert all(
            flat.pair_keys[int(pid)] == fleet.pair_key_of(identity)
            for pid, identity in zip(flat.pair_ids_of(homes), flat.identities)
        )

    def test_live_arrays_mirror_energy_and_position(self):
        fleet = _fleet([(0, 0)])
        flat = fleet.flat
        vehicle = fleet.responsible_vehicle((0, 0))
        fleet.deliver_job((0, 1), energy=2.0)
        index = vehicle.index
        assert flat.travel[index] == vehicle.travel_energy
        assert flat.service[index] == vehicle.service_energy == 2.0
        assert flat.positions[index] == vehicle.position == (0, 1)
        # vectorized measurement views agree with the per-object gather
        assert fleet.total_travel() == sum(
            v.travel_energy for v in fleet.vehicles.values()
        )
        assert fleet.vehicle_energies() == {
            home: v.energy_used for home, v in fleet.vehicles.items()
        }
        assert fleet.max_energy_used() == max(
            v.energy_used for v in fleet.vehicles.values()
        )

    def test_state_array_tracks_transitions_and_breakage(self):
        fleet = _fleet([(0, 0)], capacity=3.0)
        flat = fleet.flat
        states = flat.state_view()
        active = int((states == STATE_ACTIVE).sum())
        assert active == fleet.active_vehicle_count() > 0
        # exhaust one active vehicle -> DONE in the array, replacement ACTIVE
        vehicle = fleet.responsible_vehicle((0, 0))
        fleet.deliver_job((0, 0), energy=2.5)
        assert vehicle.status.working == WorkingState.DONE
        assert flat.state_view()[vehicle.index] == STATE_DONE
        assert fleet.active_vehicle_count() == int(
            (flat.state_view() == STATE_ACTIVE).sum()
        )
        # breakage mirrors into the broken array
        other = next(iter(fleet.vehicles))
        fleet.crash_vehicle(other)
        assert flat.broken[fleet.vehicles[other].index] == 1
        fleet.revive_vehicle(other)
        assert flat.broken[fleet.vehicles[other].index] == 0

    def test_watch_array_tracks_monitored_pair(self):
        fleet = _fleet([(0, 0)], monitoring=True)
        flat = fleet.flat
        for vehicle in fleet.vehicles.values():
            expected = (
                -1
                if vehicle.monitored_pair is None
                else flat.pair_id_of[vehicle.monitored_pair]
            )
            assert flat.watch[vehicle.index] == expected

    def test_arrays_consistent_after_full_run(self):
        jobs = JobSequence.from_positions(
            [(0, 0), (0, 1), (5, 5), (2, 7), (0, 0), (5, 6)] * 3
        )
        result = run_online(jobs, capacity="theorem", config=FleetConfig(monitoring=True))
        assert result.feasible

    def test_idle_state_code_round_trip(self):
        fleet = _fleet([(0, 0)])
        flat = fleet.flat
        idle = [
            v
            for v in fleet.vehicles.values()
            if v.status.working == WorkingState.IDLE
        ]
        assert idle
        assert all(flat.state[v.index] == STATE_IDLE for v in idle)
