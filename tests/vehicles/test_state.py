"""Tests for the Figure 3.1 vehicle state machine."""

from __future__ import annotations

import pytest

from repro.vehicles.state import (
    TransferState,
    VALID_STATES,
    VehicleStatus,
    WorkingState,
)


class TestValidStates:
    def test_seven_valid_states(self):
        assert len(VALID_STATES) == 7

    def test_initiator_requires_done(self):
        assert (WorkingState.ACTIVE, TransferState.INITIATOR) not in VALID_STATES
        assert (WorkingState.IDLE, TransferState.INITIATOR) not in VALID_STATES
        assert (WorkingState.DONE, TransferState.INITIATOR) in VALID_STATES

    def test_constructing_invalid_state_raises(self):
        with pytest.raises(ValueError):
            VehicleStatus(WorkingState.ACTIVE, TransferState.INITIATOR)
        with pytest.raises(ValueError):
            VehicleStatus(WorkingState.IDLE, TransferState.INITIATOR)


class TestTransitions:
    def test_initial_states(self):
        idle = VehicleStatus(WorkingState.IDLE, TransferState.WAITING)
        active = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        assert idle.as_tuple() == (WorkingState.IDLE, TransferState.WAITING)
        assert active.as_tuple() == (WorkingState.ACTIVE, TransferState.WAITING)

    def test_active_to_done_initiator(self):
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        status.transition(WorkingState.DONE, TransferState.INITIATOR)
        assert status.working == WorkingState.DONE
        assert status.transfer == TransferState.INITIATOR

    def test_initiator_back_to_waiting(self):
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        status.transition(WorkingState.DONE, TransferState.INITIATOR)
        status.transition(WorkingState.DONE, TransferState.WAITING)
        assert status.transfer == TransferState.WAITING

    def test_idle_to_active_on_move(self):
        status = VehicleStatus(WorkingState.IDLE, TransferState.WAITING)
        status.transition(WorkingState.ACTIVE, TransferState.WAITING)
        assert status.working == WorkingState.ACTIVE

    def test_searching_toggle_for_every_working_state(self):
        for working in WorkingState:
            status = VehicleStatus(working, TransferState.WAITING)
            status.set_transfer(TransferState.SEARCHING)
            assert status.transfer == TransferState.SEARCHING
            status.set_transfer(TransferState.WAITING)
            assert status.transfer == TransferState.WAITING

    def test_self_transition_is_noop(self):
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        status.transition(WorkingState.ACTIVE, TransferState.WAITING)
        assert status.working == WorkingState.ACTIVE

    def test_illegal_transition_rejected(self):
        status = VehicleStatus(WorkingState.IDLE, TransferState.WAITING)
        with pytest.raises(ValueError):
            status.transition(WorkingState.DONE, TransferState.WAITING)

    def test_done_cannot_revert_to_active(self):
        status = VehicleStatus(WorkingState.DONE, TransferState.WAITING)
        with pytest.raises(ValueError):
            status.transition(WorkingState.ACTIVE, TransferState.WAITING)

    def test_transition_to_invalid_state_rejected(self):
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        with pytest.raises(ValueError):
            status.transition(WorkingState.ACTIVE, TransferState.INITIATOR)

    def test_scenario2_done_without_initiating(self):
        # An active vehicle may become (done, waiting) directly when it fails
        # to initiate the diffusing computation (Section 3.2.5, scenario 2).
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        status.transition(WorkingState.DONE, TransferState.WAITING)
        assert status.working == WorkingState.DONE

    def test_str_representation(self):
        status = VehicleStatus(WorkingState.ACTIVE, TransferState.WAITING)
        assert str(status) == "(active, waiting)"

    def test_set_working_helper(self):
        status = VehicleStatus(WorkingState.IDLE, TransferState.WAITING)
        status.set_working(WorkingState.ACTIVE)
        assert status.working == WorkingState.ACTIVE
