"""Direct unit tests of the vehicle process (energy ledger, state, failures).

The protocol-level behaviour is covered end to end in ``test_protocol.py``;
these tests pin down the vehicle's local accounting and edge cases without
going through a whole fleet run.
"""

from __future__ import annotations

import math

import pytest

from repro.core.demand import DemandMap
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.vehicles.state import WorkingState


def build_fleet(capacity=10.0, omega=3.0, **kwargs) -> Fleet:
    demand = DemandMap({(0, 0): 5.0})
    return Fleet(demand, omega, FleetConfig(capacity=capacity, **kwargs))


class TestEnergyLedger:
    def test_initial_state(self):
        fleet = build_fleet()
        vehicle = fleet.vehicles[(0, 0)]
        assert vehicle.energy_used == 0.0
        assert vehicle.energy_remaining == 10.0
        assert vehicle.jobs_served == 0

    def test_unbounded_capacity_remaining_is_infinite(self):
        fleet = build_fleet(capacity=None)
        vehicle = fleet.vehicles[(0, 0)]
        assert math.isinf(vehicle.energy_remaining)

    def test_serving_updates_travel_and_service_separately(self):
        fleet = build_fleet()
        vehicle = fleet.vehicles[(0, 0)]
        assert vehicle.serve_job((0, 1))  # adjacent vertex of the pair
        assert vehicle.travel_energy == 1.0
        assert vehicle.service_energy == 1.0
        assert vehicle.position == (0, 1)
        assert vehicle.jobs_served == 1

    def test_refuses_job_beyond_capacity(self):
        fleet = build_fleet(capacity=1.5)
        vehicle = fleet.vehicles[(0, 0)]
        assert vehicle.serve_job((0, 0))  # 1 energy, remaining 0.5 -> done
        assert vehicle.status.working == WorkingState.DONE
        assert not vehicle.serve_job((0, 0))

    def test_idle_vehicle_refuses_jobs(self):
        fleet = build_fleet()
        idle = next(
            v for v in fleet.vehicles.values() if v.status.working == WorkingState.IDLE
        )
        assert not idle.serve_job(idle.home)
        assert idle.energy_used == 0.0

    def test_snapshot_contents(self):
        fleet = build_fleet()
        vehicle = fleet.vehicles[(0, 0)]
        vehicle.serve_job((0, 0))
        snap = vehicle.snapshot()
        assert snap["home"] == (0, 0)
        assert snap["jobs_served"] == 1
        assert snap["energy_used"] == pytest.approx(1.0)
        assert "state" in snap and "pair" in snap


class TestBrokenVehicles:
    def test_broken_vehicle_refuses_jobs_but_keeps_radio(self):
        fleet = build_fleet(capacity=50.0)
        vehicle = fleet.vehicles[(0, 0)]
        vehicle.mark_broken()
        assert not vehicle.serve_job((0, 0))
        # Its neighbors can still flood queries through it: a Phase I search
        # started by another vehicle terminates (exercised indirectly here by
        # checking the broken vehicle still answers).
        assert vehicle.broken

    def test_broken_idle_vehicle_is_not_a_replacement_candidate(self):
        fleet = build_fleet(capacity=6.0)
        # Break every idle vehicle; exhaust the active one; the replacement
        # search must then fail (recorded, not crash).
        for vehicle in fleet.vehicles.values():
            if vehicle.status.working == WorkingState.IDLE:
                vehicle.mark_broken()
        for _ in range(6):
            fleet.deliver_job((0, 0))
        assert fleet.stats.failed_replacements >= 1
        assert fleet.stats.replacements == 0


class TestDoneThreshold:
    def test_higher_threshold_declares_done_earlier(self):
        early = build_fleet(capacity=10.0, done_threshold=6.0)
        late = build_fleet(capacity=10.0, done_threshold=2.0)
        for fleet in (early, late):
            for _ in range(5):
                fleet.deliver_job((0, 0))
        early_vehicle = early.vehicles[(0, 0)]
        late_vehicle = late.vehicles[(0, 0)]
        assert early_vehicle.status.working == WorkingState.DONE
        assert late_vehicle.status.working == WorkingState.ACTIVE
