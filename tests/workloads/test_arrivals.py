"""Tests for arrival orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandMap
from repro.workloads.arrivals import (
    alternating_arrivals,
    random_arrivals,
    sequential_arrivals,
)


@pytest.fixture
def demand() -> DemandMap:
    return DemandMap({(0, 0): 2.0, (1, 0): 3.0, (5, 5): 1.0})


class TestSequentialArrivals:
    def test_job_count_matches_total_demand(self, demand):
        jobs = sequential_arrivals(demand)
        assert len(jobs) == 6

    def test_collapses_back_to_demand(self, demand):
        jobs = sequential_arrivals(demand)
        assert jobs.demand_map() == demand

    def test_positions_grouped(self, demand):
        jobs = sequential_arrivals(demand)
        positions = jobs.positions()
        # All jobs of a position are contiguous.
        seen = []
        for position in positions:
            if not seen or seen[-1] != position:
                seen.append(position)
        assert len(seen) == len(set(seen))

    def test_fractional_demand_rounded_up(self):
        jobs = sequential_arrivals(DemandMap({(0, 0): 1.5}))
        assert len(jobs) == 2

    def test_empty_demand(self):
        jobs = sequential_arrivals(DemandMap({}, dim=2))
        assert jobs.is_empty()


class TestRandomArrivals:
    def test_same_multiset_of_positions(self, demand):
        jobs = random_arrivals(demand, np.random.default_rng(0))
        assert sorted(jobs.positions()) == sorted(sequential_arrivals(demand).positions())

    def test_reproducible(self, demand):
        a = random_arrivals(demand, np.random.default_rng(3))
        b = random_arrivals(demand, np.random.default_rng(3))
        assert a.positions() == b.positions()

    def test_different_seeds_differ(self):
        demand = DemandMap({(x, 0): 1.0 for x in range(20)})
        a = random_arrivals(demand, np.random.default_rng(1))
        b = random_arrivals(demand, np.random.default_rng(2))
        assert a.positions() != b.positions()


class TestAlternatingArrivals:
    def test_round_robin_order(self):
        demand = DemandMap({(0, 0): 2.0, (3, 0): 2.0})
        jobs = alternating_arrivals(demand)
        assert jobs.positions() == [(0, 0), (3, 0), (0, 0), (3, 0)]

    def test_uneven_demands(self):
        demand = DemandMap({(0, 0): 3.0, (3, 0): 1.0})
        jobs = alternating_arrivals(demand)
        assert jobs.positions() == [(0, 0), (3, 0), (0, 0), (0, 0)]

    def test_rounds_cap(self):
        demand = DemandMap({(0, 0): 5.0, (3, 0): 5.0})
        jobs = alternating_arrivals(demand, rounds=2)
        assert len(jobs) == 4

    def test_collapses_back_to_demand(self):
        demand = DemandMap({(0, 0): 2.0, (3, 0): 4.0})
        assert alternating_arrivals(demand).demand_map() == demand

    def test_empty(self):
        assert alternating_arrivals(DemandMap({}, dim=2)).is_empty()
