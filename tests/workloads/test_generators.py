"""Tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.lattice import Box
from repro.workloads.generators import (
    clustered_demand,
    diurnal_demand,
    line_demand,
    point_demand,
    random_uniform_demand,
    square_demand,
    zipf_demand,
)


class TestDeterministicGenerators:
    def test_square_demand_shape_and_total(self):
        demand = square_demand(4, 3.0)
        assert len(demand) == 16
        assert demand.total() == pytest.approx(48.0)
        assert demand.bounding_box() == Box((0, 0), (3, 3))

    def test_square_demand_origin(self):
        demand = square_demand(2, 1.0, origin=(5, -2))
        assert (5, -2) in demand
        assert (6, -1) in demand

    def test_square_invalid_side(self):
        with pytest.raises(ValueError):
            square_demand(0, 1.0)

    def test_line_demand_along_axis(self):
        demand = line_demand(5, 2.0)
        assert len(demand) == 5
        assert all(point[1] == 0 for point in demand.support())

    def test_line_demand_other_axis(self):
        demand = line_demand(4, 1.0, axis=1)
        assert all(point[0] == 0 for point in demand.support())

    def test_line_demand_one_dimensional_embedding(self):
        demand = line_demand(3, 1.0, origin=(0,), dim=1)
        assert demand.dim == 1

    def test_line_invalid_arguments(self):
        with pytest.raises(ValueError):
            line_demand(0, 1.0)
        with pytest.raises(ValueError):
            line_demand(3, 1.0, axis=5)
        with pytest.raises(ValueError):
            line_demand(3, 1.0, origin=(0,), dim=2)

    def test_point_demand(self):
        demand = point_demand(9.0, position=(4, 4))
        assert demand.support() == [(4, 4)]
        assert demand.total() == 9.0


class TestRandomGenerators:
    def test_uniform_total_jobs(self, rng):
        window = Box.cube((0, 0), 8)
        demand = random_uniform_demand(window, 100, rng)
        assert demand.total() == pytest.approx(100.0)
        for point in demand.support():
            assert point in window

    def test_uniform_zero_jobs(self, rng):
        demand = random_uniform_demand(Box.cube((0, 0), 4), 0, rng)
        assert demand.is_empty()

    def test_uniform_negative_jobs_rejected(self, rng):
        with pytest.raises(ValueError):
            random_uniform_demand(Box.cube((0, 0), 4), -1, rng)

    def test_uniform_reproducible(self):
        window = Box.cube((0, 0), 8)
        a = random_uniform_demand(window, 50, np.random.default_rng(5))
        b = random_uniform_demand(window, 50, np.random.default_rng(5))
        assert a == b

    def test_zipf_total_and_skew(self, rng):
        window = Box.cube((0, 0), 10)
        demand = zipf_demand(window, 500, rng, exponent=1.5)
        assert demand.total() == pytest.approx(500.0)
        # Heavy skew: the largest point holds far more than the average.
        assert demand.max_demand() > 5 * demand.total() / window.size

    def test_zipf_invalid_exponent(self, rng):
        with pytest.raises(ValueError):
            zipf_demand(Box.cube((0, 0), 4), 10, rng, exponent=0.0)

    def test_clustered_inside_window(self, rng):
        window = Box.cube((0, 0), 12)
        demand = clustered_demand(window, 3, 40, rng, spread=2)
        assert demand.total() == pytest.approx(120.0)
        for point in demand.support():
            assert point in window

    def test_clustered_is_concentrated(self, rng):
        window = Box.cube((0, 0), 20)
        demand = clustered_demand(window, 2, 50, rng, spread=1)
        # 100 jobs land on at most 2 * (3x3) = 18 distinct points.
        assert len(demand) <= 18

    def test_clustered_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            clustered_demand(Box.cube((0, 0), 4), 0, 10, rng)


class TestDiurnalDemand:
    def test_total_matches_jobs_and_stays_inside_window(self, rng):
        window = Box.cube((0, 0), 16)
        demand = diurnal_demand(window, 200, rng)
        assert demand.total() == pytest.approx(200.0)
        for point in demand.support():
            assert point in window

    def test_load_follows_the_sinusoid(self):
        """Peak-of-day slices must carry visibly more load than the trough."""
        window = Box.cube((0, 0), 16)
        demand = diurnal_demand(window, 4000, np.random.default_rng(0), trough=0.1)
        per_slice = [0.0] * 16
        for point, value in demand.items():
            per_slice[point[0]] += value
        # sin peaks a quarter period in (slice ~4) and bottoms out at ~12.
        peak = max(per_slice[2:7])
        trough = min(per_slice[10:15])
        assert peak > 2.0 * trough

    def test_deterministic_per_seed(self):
        window = Box.cube((0, 0), 8)
        a = diurnal_demand(window, 60, np.random.default_rng(3))
        b = diurnal_demand(window, 60, np.random.default_rng(3))
        assert a.as_dict() == b.as_dict()

    def test_periods_repeat_the_curve(self, rng):
        window = Box.cube((0, 0), 16)
        demand = diurnal_demand(window, 3000, rng, periods=2.0, trough=0.1)
        per_slice = [0.0] * 16
        for point, value in demand.items():
            per_slice[point[0]] += value
        # Two days across the window: both peak bands outweigh both troughs.
        assert min(per_slice[1:4]) > max(per_slice[5:8]) * 0.5

    def test_invalid_arguments_rejected(self, rng):
        window = Box.cube((0, 0), 8)
        with pytest.raises(ValueError):
            diurnal_demand(window, -1, rng)
        with pytest.raises(ValueError):
            diurnal_demand(window, 10, rng, periods=0.0)
        with pytest.raises(ValueError):
            diurnal_demand(window, 10, rng, trough=1.5)
        with pytest.raises(ValueError):
            diurnal_demand(window, 10, rng, axis=5)


class TestMobilityDemand:
    def test_total_equals_walkers_times_steps(self):
        from repro.workloads.generators import mobility_demand

        window = Box((0, 0), (9, 9))
        demand = mobility_demand(window, 3, 40, np.random.default_rng(0))
        assert demand.total() == pytest.approx(120.0)

    def test_stays_inside_the_window(self):
        from repro.workloads.generators import mobility_demand

        window = Box((2, 2), (6, 6))
        demand = mobility_demand(window, 4, 50, np.random.default_rng(1))
        for point in demand.support():
            assert point in window

    def test_trails_are_connected_per_step_bound(self):
        from repro.workloads.generators import mobility_demand

        # step=1 means single-walker trails move at most one per axis, so
        # the support of one walker is far from uniform scatter: many
        # repeat visits concentrate demand above 1 somewhere.
        window = Box((0, 0), (4, 4))
        demand = mobility_demand(window, 1, 60, np.random.default_rng(2))
        assert max(v for _, v in demand.items()) > 1.0

    def test_deterministic_per_seed(self):
        from repro.workloads.generators import mobility_demand

        window = Box((0, 0), (9, 9))
        first = mobility_demand(window, 2, 30, np.random.default_rng(7))
        second = mobility_demand(window, 2, 30, np.random.default_rng(7))
        assert first == second

    def test_invalid_parameters_rejected(self):
        from repro.workloads.generators import mobility_demand

        window = Box((0, 0), (5, 5))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mobility_demand(window, 0, 10, rng)
        with pytest.raises(ValueError):
            mobility_demand(window, 1, 0, rng)
        with pytest.raises(ValueError):
            mobility_demand(window, 1, 10, rng, step=0)
