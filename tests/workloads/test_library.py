"""Unit tests for the scenario-family registry and its spec integration."""

from __future__ import annotations

import pytest

from repro.api import ConfigError, ScenarioSpec
from repro.workloads.library import (
    ScenarioFamily,
    UnknownFamilyError,
    available_families,
    build_family_demand,
    build_family_failures,
    family_broken_failures,
    family_config,
    family_descriptions,
    family_matrix,
    family_spec,
    get_family,
    register_family,
)


class TestRegistry:
    def test_unknown_family_raises_with_catalogue(self):
        with pytest.raises(UnknownFamilyError, match="hotspot"):
            get_family("nope")

    def test_descriptions_cover_every_family(self):
        descriptions = family_descriptions()
        assert sorted(descriptions) == available_families()
        assert all(descriptions.values())

    def test_duplicate_registration_is_an_error(self):
        family = get_family("hotspot")
        with pytest.raises(ValueError, match="already registered"):
            register_family(family)

    def test_register_and_unregister_a_custom_family(self):
        custom = ScenarioFamily(
            name="test-custom",
            description="a square for the tests",
            build=lambda params, rng: build_family_demand("scale-up", {"side": 3}),
            defaults={"side": 3},
        )
        register_family(custom)
        try:
            assert "test-custom" in available_families()
            assert not build_family_demand("test-custom").is_empty()
        finally:
            from repro.workloads import library

            del library._FAMILIES["test-custom"]


class TestParams:
    def test_small_preset_overlays_defaults(self):
        family = get_family("hotspot")
        small = family.params(preset="small")
        assert small["side"] == 8
        assert small["hotspot_share"] == family.defaults["hotspot_share"]

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            get_family("hotspot").params({"bogus": 1})

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            get_family("hotspot").params(preset="huge")


class TestSpecs:
    def test_family_spec_uses_family_default_order(self):
        spec = family_spec("bursty")
        assert spec.order == "bursty"
        assert spec.family == "bursty"

    def test_from_family_classmethod_round_trips(self):
        spec = ScenarioSpec.from_family("hotspot", seed=3, side=10)
        assert spec.family_params_dict()["side"] == 10
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.demand().as_dict() == spec.demand().as_dict()

    def test_from_family_unknown_name_is_config_error(self):
        with pytest.raises(ConfigError):
            ScenarioSpec.from_family("nope")

    def test_bare_name_falls_back_to_family_defaults(self):
        named = ScenarioSpec(name="scale-up", seed=0)
        explicit = family_spec("scale-up", order="random")
        assert named.demand().as_dict() == explicit.demand().as_dict()

    def test_demand_depends_on_seed_for_random_families(self):
        a = build_family_demand("hotspot", seed=0)
        b = build_family_demand("hotspot", seed=1)
        assert a.as_dict() != b.as_dict()

    def test_scale_up_defaults_reach_hundred_vehicle_fleets(self):
        demand = build_family_demand("scale-up")
        assert len(demand) >= 100  # one vehicle per support vertex at minimum

    def test_inline_and_family_are_mutually_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            ScenarioSpec(name="x", entries=(((0, 0), 1.0),), family="hotspot")

    def test_family_params_require_a_family(self):
        with pytest.raises(ConfigError, match="without a family"):
            ScenarioSpec(name="x", family_params=(("side", 8),))


class TestFailureBuilders:
    def test_partition_family_emits_job_clock_window(self):
        params = get_family("partition").params(preset="small")
        spec = build_family_failures("partition", params)
        assert len(spec.partitions) == 1
        window = spec.partitions[0]
        assert 0 < window.start < window.end

    def test_churn_family_pairs_leaves_with_joins(self):
        params = get_family("churn").params(preset="small")
        spec = build_family_failures("churn", params)
        leaves = [c for c in spec.churn if c.action == "leave"]
        joins = [c for c in spec.churn if c.action == "join"]
        assert len(leaves) == len(joins) == params["churn_vehicles"]
        assert all(j.time > l.time for l, j in zip(leaves, joins))

    def test_failure_free_family_returns_none(self):
        assert build_family_failures("hotspot") is None

    def test_failures_deterministic_per_seed(self):
        params = get_family("regional-outage").params(preset="small")
        a = build_family_failures("regional-outage", params, seed=5)
        b = build_family_failures("regional-outage", params, seed=5)
        assert a == b


class TestFamilyConfigs:
    def test_online_broken_gets_synthesized_crash_for_quiet_family(self):
        config = family_config("hotspot", "online-broken", preset="small")
        assert config.failures is not None
        assert not config.failures.is_empty()

    def test_family_broken_failures_is_the_single_source_of_truth(self):
        from repro.workloads.library import family_broken_failures

        synthesized = family_broken_failures("hotspot")
        assert synthesized is not None and synthesized.crashed
        own_plan = family_broken_failures("partition")
        assert own_plan.partitions  # failure families keep their own plan
        config = family_config("hotspot", "online-broken")
        assert config.failures == family_broken_failures(
            "hotspot", config.scenario.family_params_dict()
        )

    def test_grid_demand_supports_other_dimensions(self):
        from repro.workloads.generators import grid_demand

        demand = grid_demand(3, 1.0, dim=3)
        assert len(demand) == 27
        assert demand.dim == 3

    def test_non_failure_solvers_get_no_failures(self):
        for solver in ("offline", "online", "greedy", "cvrp"):
            assert family_config("partition", solver, preset="small").failures is None

    def test_matrix_enumeration_is_family_major(self):
        configs = family_matrix(("hotspot", "bursty"), ("offline", "greedy"), seeds=(0, 1))
        labels = [(c.scenario.name, c.solver, c.scenario.seed) for c in configs]
        assert labels == [
            ("hotspot", "offline", 0),
            ("hotspot", "offline", 1),
            ("hotspot", "greedy", 0),
            ("hotspot", "greedy", 1),
            ("bursty", "offline", 0),
            ("bursty", "offline", 1),
            ("bursty", "greedy", 0),
            ("bursty", "greedy", 1),
        ]


class TestTransportChannels:
    def test_partition_family_can_bundle_byzantine_corruption(self):
        from repro.workloads.library import build_family_failures

        params = get_family("partition").params(preset="small")
        assert build_family_failures("partition", params).transport is None
        params["corruption_rate"] = 0.1
        spec = build_family_failures("partition", params, seed=2)
        assert spec.transport is not None
        assert spec.transport.kind == "corrupting"
        assert spec.transport.params_dict()["rate"] == 0.1
        # Deterministic per seed, distinct across seeds.
        again = build_family_failures("partition", params, seed=2)
        assert again.transport == spec.transport
        other = build_family_failures("partition", params, seed=3)
        assert other.transport != spec.transport

    def test_family_config_accepts_an_explicit_transport(self):
        config = family_config("hotspot", "online", preset="small", transport="lossy")
        assert config.transport is not None
        assert config.transport.kind == "lossy"
        assert config.effective_transport() is config.transport

    def test_explicit_transport_wins_over_family_bundled_one(self):
        config = family_config(
            "partition",
            "online-broken",
            preset="small",
            corruption_rate=0.2,
            transport="lossy",
        )
        assert config.transport.kind == "lossy"
        assert config.failures.transport is None  # no ambiguity left behind
        assert config.effective_transport().kind == "lossy"


class TestMobilityFamily:
    def test_registered_with_presets(self):
        family = get_family("mobility")
        assert family.small["side"] == 8
        demand = build_family_demand("mobility", seed=3)
        assert not demand.is_empty()

    def test_bundles_the_distance_latency_transport(self):
        spec = build_family_failures("mobility", seed=0)
        assert spec is not None
        assert spec.transport is not None
        assert spec.transport.kind == "distance-latency"
        params = spec.transport.params_dict()
        assert params["per_step"] > 0

    def test_broken_failures_add_a_crash_and_keep_the_transport(self):
        spec = family_broken_failures("mobility", seed=0)
        assert spec.crashed  # a physical failure was synthesized
        assert spec.transport is not None and spec.transport.kind == "distance-latency"

    def test_explicit_transport_still_leaves_a_nonempty_spec(self):
        from repro.api import TransportSpec

        config = family_config(
            "mobility",
            "online-broken",
            preset="small",
            transport=TransportSpec("lossy", {"loss": 0.05, "seed": 1}),
        )
        assert config.failures is not None and not config.failures.is_empty()
        assert config.failures.transport is None  # explicit transport won
        assert config.effective_transport().kind == "lossy"

    def test_online_run_uses_the_family_transport(self):
        from repro.api import ExperimentEngine

        config = family_config("mobility", "online-broken", preset="small")
        result = ExperimentEngine().run(config)
        assert result.extra("transport") == "distance-latency"
        assert result.jobs_total > 0
