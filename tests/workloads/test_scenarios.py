"""Tests for the named paper scenarios."""

from __future__ import annotations

import pytest

from repro.core.omega import (
    example_line_bound,
    example_point_bound,
    example_square_bound,
)
from repro.workloads.scenarios import paper_scenarios


class TestPaperScenarios:
    def test_contains_the_three_worked_examples(self):
        names = [s.name for s in paper_scenarios()]
        for required in ("square", "line", "point"):
            assert required in names

    def test_six_scenarios_by_default(self):
        assert len(paper_scenarios()) == 6

    def test_reference_bounds_match_closed_forms(self):
        scenarios = {s.name: s for s in paper_scenarios(
            square_side=8, square_per_point=20.0, line_per_point=12.0, point_total=400.0
        )}
        assert scenarios["square"].reference_bound == pytest.approx(
            example_square_bound(8, 20.0)
        )
        assert scenarios["line"].reference_bound == pytest.approx(example_line_bound(12.0))
        assert scenarios["point"].reference_bound == pytest.approx(
            example_point_bound(400.0)
        )

    def test_random_scenarios_have_no_reference_bound(self):
        for scenario in paper_scenarios():
            if scenario.name in ("uniform", "zipf", "clustered"):
                assert scenario.reference_bound is None

    def test_reproducible_with_same_seed(self):
        first = {s.name: s.demand for s in paper_scenarios(seed=11)}
        second = {s.name: s.demand for s in paper_scenarios(seed=11)}
        for name in first:
            assert first[name] == second[name]

    def test_all_scenarios_nonempty(self):
        for scenario in paper_scenarios():
            assert not scenario.demand.is_empty()
            assert scenario.description
